package lint

import (
	"go/ast"
	"go/types"
)

// wallclockFuncs are the time-package functions that read the wall clock.
// Engine hot paths must use the injected NowNanos clock instead so that
// simulated-time tests are deterministic and event-time semantics (paper
// §3.3) never silently depend on processing time.
var wallclockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// NewWallclock builds the event-time-purity analyzer. Packages matching
// allow (exact path or "prefix/..." pattern) are exempt: metrics,
// benchmark drivers, and sinks legitimately read the wall clock. An empty
// allow list exempts nothing.
func NewWallclock(allow []string) *Analyzer {
	a := &Analyzer{
		Name: "wallclock",
		Doc:  "flags time.Now/time.Since/time.Until in engine hot paths; use the injected NowNanos clock",
	}
	a.Run = func(p *Package) []Diagnostic {
		if pathMatches(p.Path, allow) {
			return nil
		}
		var diags []Diagnostic
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := p.Info.Uses[sel.Sel]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				if obj.Pkg().Path() != "time" || !wallclockFuncs[obj.Name()] {
					return true
				}
				if _, isFunc := obj.(*types.Func); !isFunc {
					return true
				}
				diags = append(diags, a.Diag(p, sel.Pos(),
					"time.%s reads the wall clock in an engine hot path; use the injected NowNanos clock", obj.Name()))
				return true
			})
		}
		return diags
	}
	return a
}
