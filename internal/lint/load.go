package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages without go/packages or any other
// module outside the standard library. Standard-library imports are
// resolved by the stdlib source importer (go/importer "source" mode, which
// type-checks GOROOT sources); intra-module imports are resolved against
// packages the loader has already checked, in dependency order. One Loader
// should be reused across loads: the source importer caches the stdlib
// packages it has checked.
type Loader struct {
	fset *token.FileSet
	std  types.Importer
	// checked caches module packages by import path across loads.
	checked map[string]*types.Package
}

// NewLoader creates a loader with a fresh file set and stdlib importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		checked: map[string]*types.Package{},
	}
}

// Fset returns the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// chainImporter resolves module-local paths first, then the stdlib.
type chainImporter struct {
	local map[string]*types.Package
	std   types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.std.Import(path)
}

// rawPkg is one package's parsed-but-unchecked sources.
type rawPkg struct {
	path    string
	dir     string
	name    string
	files   []*ast.File
	src     map[string][]byte
	imports []string // module-local imports only
}

// LoadModule loads every non-test package of the Go module rooted at root
// (the directory containing go.mod), type-checks them in dependency order,
// and returns them sorted by import path. testdata, hidden, and underscore
// directories are skipped, as are _test.go files: test code is exempt from
// the engine's invariants by design.
func (l *Loader) LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	var raws []*rawPkg
	err = filepath.Walk(root, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if p != root && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		rp, err := l.parseDir(p)
		if err != nil {
			return err
		}
		if rp == nil {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		rp.path = modPath
		if rel != "." {
			rp.path = modPath + "/" + filepath.ToSlash(rel)
		}
		raws = append(raws, rp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	ordered, err := topoSort(raws, modPath)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, rp := range ordered {
		pkg, err := l.check(rp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir loads the single package in dir under the given synthetic import
// path. The package may import the standard library and any package loaded
// earlier through this loader; fixture packages should stick to the
// stdlib.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	rp, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if rp == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	rp.path = importPath
	return l.check(rp)
}

// parseDir parses the non-test Go files of one directory; nil when the
// directory holds no Go files.
func (l *Loader) parseDir(dir string) (*rawPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rp := &rawPkg{dir: dir, src: map[string][]byte{}}
	seen := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if rp.name == "" {
			rp.name = f.Name.Name
		} else if rp.name != f.Name.Name {
			return nil, fmt.Errorf("lint: %s: mixed packages %s and %s", dir, rp.name, f.Name.Name)
		}
		rp.files = append(rp.files, f)
		rp.src[full] = src
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if !seen[ip] {
				seen[ip] = true
				rp.imports = append(rp.imports, ip)
			}
		}
	}
	if len(rp.files) == 0 {
		return nil, nil
	}
	return rp, nil
}

// check type-checks one parsed package against everything checked so far.
func (l *Loader) check(rp *rawPkg) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: &chainImporter{local: l.checked, std: l.std}}
	tpkg, err := conf.Check(rp.path, l.fset, rp.files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", rp.path, err)
	}
	l.checked[rp.path] = tpkg
	return &Package{
		Path:  rp.path,
		Dir:   rp.dir,
		Fset:  l.fset,
		Files: rp.files,
		Types: tpkg,
		Info:  info,
		Src:   rp.src,
	}, nil
}

// topoSort orders packages so every module-local import precedes its
// importer.
func topoSort(raws []*rawPkg, modPath string) ([]*rawPkg, error) {
	byPath := map[string]*rawPkg{}
	for _, rp := range raws {
		byPath[rp.path] = rp
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := map[string]int{}
	var ordered []*rawPkg
	var visit func(rp *rawPkg) error
	visit = func(rp *rawPkg) error {
		switch state[rp.path] {
		case gray:
			return fmt.Errorf("lint: import cycle through %s", rp.path)
		case black:
			return nil
		}
		state[rp.path] = gray
		for _, ip := range rp.imports {
			if !strings.HasPrefix(ip, modPath) {
				continue
			}
			dep, ok := byPath[ip]
			if !ok {
				return fmt.Errorf("lint: %s imports unknown module package %s", rp.path, ip)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[rp.path] = black
		ordered = append(ordered, rp)
		return nil
	}
	// Deterministic order regardless of filesystem enumeration.
	sort.Slice(raws, func(i, j int) bool { return raws[i].path < raws[j].path })
	for _, rp := range raws {
		if err := visit(rp); err != nil {
			return nil, err
		}
	}
	return ordered, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}
