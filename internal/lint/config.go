package lint

// ModuleAnalyzers returns the analyzer suite configured for this module's
// layout. The wallclock allowlist names the packages that legitimately
// read the wall clock: metrics and benchmark harnesses (they measure real
// elapsed time), the driver (queue-wait accounting), data generators, and
// the CLI/example binaries. Everything else — the engine core, the SPE
// runtime, windows, checkpointing, changelog, cluster — must use the
// injected NowNanos clock. The maporder scope names the packages whose
// outputs must be deterministic: checkpoint encoding, changelog emission,
// result routing, and the runtime/cluster exchanges. The supervised-go
// scope names the runtime packages whose goroutines must enter through the
// panic-capturing supervisor, so no operator panic can kill the process.
// The state scope names the packages whose Snapshot/Restore pairs the
// state-integrity analyzers (snapcover, snapshot-symmetry) audit before
// any of that state goes durable. The errsink scope is the state scope
// plus internal/durable: a dropped fsync or Close error on the durable
// path is precisely the silent data loss the backend exists to prevent —
// an unchecked Sync means the manifest may reference bytes the kernel
// never promised. The lifetime analyzers (poolsafe, aliasescape,
// scratchlocal) run module-wide: their registry is opt-in — a package
// with no //lint:pooled directive early-outs for free — so scoping would
// only exempt future pooled subsystems from the audit.
func ModuleAnalyzers(modPath string) []*Analyzer {
	wallclockAllow := []string{
		modPath + "/internal/metrics",
		modPath + "/internal/experiments",
		modPath + "/internal/baseline",
		modPath + "/internal/driver",
		modPath + "/internal/gen",
		modPath + "/cmd/...",
		modPath + "/examples/...",
	}
	mapOrderScope := []string{
		modPath + "/internal/checkpoint",
		modPath + "/internal/changelog",
		modPath + "/internal/core",
		modPath + "/internal/spe",
		modPath + "/internal/cluster",
		// The durable manifest is itself a deterministic encoding: equal
		// store states must serialize to byte-identical manifests or the
		// chaos tests' byte-identity bar is unverifiable.
		modPath + "/internal/durable",
		// The linter's own output must be deterministic too (the CI
		// self-check runs astream-vet over internal/lint).
		modPath + "/internal/lint",
	}
	supervisedScope := []string{
		modPath + "/internal/spe",
		modPath + "/internal/core",
	}
	stateScope := []string{
		modPath + "/internal/core",
		modPath + "/internal/checkpoint",
		modPath + "/internal/changelog",
	}
	errsinkScope := append(append([]string(nil), stateScope...),
		modPath+"/internal/durable",
	)
	return []*Analyzer{
		NewWallclock(wallclockAllow),
		NewLockHeldSend(),
		NewHotAlloc(),
		NewMapOrder(mapOrderScope),
		NewLeakyGo(),
		NewNakedAtomic(),
		NewSupervisedGo(supervisedScope),
		NewSnapCover(stateScope),
		NewErrSink(errsinkScope),
		NewSnapSymmetry(stateScope),
		NewPoolSafe(nil),
		NewAliasEscape(nil),
		NewScratchLocal(nil),
	}
}
