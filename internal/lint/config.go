package lint

// ModuleAnalyzers returns the analyzer suite configured for this module's
// layout. The wallclock allowlist names the packages that legitimately
// read the wall clock: metrics and benchmark harnesses (they measure real
// elapsed time), the driver (queue-wait accounting), data generators, and
// the CLI/example binaries. Everything else — the engine core, the SPE
// runtime, windows, checkpointing, changelog, cluster — must use the
// injected NowNanos clock. The maporder scope names the packages whose
// outputs must be deterministic: checkpoint encoding, changelog emission,
// result routing, and the runtime/cluster exchanges. The supervised-go
// scope names the runtime packages whose goroutines must enter through the
// panic-capturing supervisor, so no operator panic can kill the process.
func ModuleAnalyzers(modPath string) []*Analyzer {
	wallclockAllow := []string{
		modPath + "/internal/metrics",
		modPath + "/internal/experiments",
		modPath + "/internal/baseline",
		modPath + "/internal/driver",
		modPath + "/internal/gen",
		modPath + "/cmd/...",
		modPath + "/examples/...",
	}
	mapOrderScope := []string{
		modPath + "/internal/checkpoint",
		modPath + "/internal/changelog",
		modPath + "/internal/core",
		modPath + "/internal/spe",
		modPath + "/internal/cluster",
	}
	supervisedScope := []string{
		modPath + "/internal/spe",
		modPath + "/internal/core",
	}
	return []*Analyzer{
		NewWallclock(wallclockAllow),
		NewLockHeldSend(),
		NewHotAlloc(),
		NewMapOrder(mapOrderScope),
		NewLeakyGo(),
		NewNakedAtomic(),
		NewSupervisedGo(supervisedScope),
	}
}
