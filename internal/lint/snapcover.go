package lint

import (
	"go/token"
	"go/types"
)

// NewSnapCover builds the snapshot field-coverage analyzer: for every
// Snapshot/Restore pair (see statepair.go) declared in a scoped package,
// each field of the state struct must be accounted for on both sides of
// the serialization boundary —
//
//   - serialized: referenced by the encode root or any function statically
//     reachable from it (field-level dataflow over the call-graph, so a
//     helper like snapSlicer(b, j.sides[k], ...) covers the field it is
//     handed);
//   - repopulated: referenced by the decode root or any function reachable
//     from it (assignments, composite-literal keys, and reads all count —
//     a Restore that validates a configured field against the snapshot is
//     as deliberate as one that overwrites it);
//   - or annotated //lint:ephemeral <reason> (scratch state recovery may
//     rebuild from nothing) / //lint:ephemeral derived <reason> (state
//     computed from serialized fields — the snapshot side is waived, but
//     the field must still be repopulated by a function reachable from the
//     decode root, and that is verified).
//
// Contradictory annotations are findings too: an ephemeral field that the
// encode path does serialize means either the annotation or the encoder is
// lying, and once snapshots go durable that disagreement is permanent
// corruption. Fields of empty struct types (spe.BaseLogic embeds) carry no
// state and are skipped.
func NewSnapCover(scope []string) *Analyzer {
	a := &Analyzer{
		Name: "snapcover",
		Doc:  "proves every state-struct field is serialized by Snapshot, repopulated by Restore, or annotated //lint:ephemeral",
	}
	a.RunModule = func(m *Module) []Diagnostic {
		var diags []Diagnostic
		ephByPkg := map[*Package][]*ephemeralDirective{}
		for _, p := range m.Pkgs {
			if len(scope) > 0 && !pathMatches(p.Path, scope) {
				continue
			}
			dirs, bad := collectEphemerals(a, p)
			ephByPkg[p] = dirs
			diags = append(diags, bad...)
		}
		for _, pair := range findStatePairs(m, scope) {
			strct := pair.typ.Underlying().(*types.Struct)
			encTouch := fieldTouches(reachableFrom(pair.enc))
			decTouch := fieldTouches(reachableFrom(pair.dec))
			dirs := ephByPkg[pair.pkg]
			for i := 0; i < strct.NumFields(); i++ {
				f := strct.Field(i)
				if emptyStruct(f.Type()) {
					continue
				}
				pos := pair.pkg.Fset.Position(f.Pos())
				dir := ephemeralFor(dirs, pos)
				serialized, repopulated := encTouch[f], decTouch[f]
				switch {
				case dir == nil:
					if !serialized {
						diags = append(diags, a.Diag(pair.pkg, f.Pos(),
							"field %s.%s is not serialized by %s and not annotated //lint:ephemeral",
							pair.name, f.Name(), pair.enc.Fn.Name()))
					}
					if !repopulated {
						diags = append(diags, a.Diag(pair.pkg, f.Pos(),
							"field %s.%s is not repopulated by %s and not annotated //lint:ephemeral",
							pair.name, f.Name(), pair.dec.Fn.Name()))
					}
				case serialized:
					dir.used = true
					diags = append(diags, a.Diag(pair.pkg, f.Pos(),
						"field %s.%s is annotated //lint:ephemeral but %s serializes it; drop the annotation or the encoding",
						pair.name, f.Name(), pair.enc.Fn.Name()))
				case dir.derived && !repopulated:
					dir.used = true
					diags = append(diags, a.Diag(pair.pkg, f.Pos(),
						"field %s.%s is annotated //lint:ephemeral derived but no function reachable from %s repopulates it",
						pair.name, f.Name(), pair.dec.Fn.Name()))
				default:
					dir.used = true
				}
			}
		}
		// A directive attached to nothing is a typo or a field that moved;
		// report it so annotations cannot rot. Packages are visited in the
		// module's deterministic order.
		for _, p := range m.Pkgs {
			for _, dir := range ephByPkg[p] {
				if !dir.used {
					diags = append(diags, Diagnostic{
						Analyzer: a.Name,
						Pos:      positionAt(dir),
						Message:  "//lint:ephemeral directive does not annotate a field of any Snapshot/Restore state type",
					})
				}
			}
		}
		return diags
	}
	return a
}

// emptyStruct reports whether t is a struct type with no fields (a pure
// marker/mixin like spe.BaseLogic).
func emptyStruct(t types.Type) bool {
	s, ok := t.Underlying().(*types.Struct)
	return ok && s.NumFields() == 0
}

// positionAt rebuilds the token.Position of a directive for reporting.
func positionAt(dir *ephemeralDirective) (pos token.Position) {
	pos.Filename = dir.file
	pos.Line = dir.line
	pos.Column = 1
	return pos
}
