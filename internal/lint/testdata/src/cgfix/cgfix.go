// Package cgfix is the call-graph construction fixture: one example of
// each resolution shape (direct call, pointer/value method, generic
// instantiation, immediately invoked literal, go/defer kinds, unknown
// callees through function values and interface dispatch).
package cgfix

type box struct{ n int }

func (b *box) bump() { b.n++ }

func (b box) get() int { return b.n }

func idf[T any](v T) T { return v }

func leaf() {}

func root() {
	b := &box{}
	b.bump()
	_ = b.get()
	_ = idf(7)
	func() { leaf() }()
	go leaf()
	defer leaf()
	var f func()
	f = leaf
	f()
}

type iface interface{ m() }

func dyn(i iface) { i.m() }

func chain() { root() }
