// Package snapsym is a lint fixture: Restore must consume snapshot bytes
// in the exact shape Snapshot produces them. The package carries its own
// miniature byte-reader (the `b []byte` + `err error` idiom the analyzer
// recognizes) and append helpers, mirroring the module's framing style.
package snapsym

import "errors"

var errShort = errors.New("short")

// rd is the byte-reader idiom: remaining input plus a sticky error.
type rd struct {
	b   []byte
	err error
}

func (r *rd) u8() byte {
	if r.err != nil || len(r.b) < 1 {
		r.err = errShort
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *rd) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.err = errShort
		return 0
	}
	v := uint32(r.b[0]) | uint32(r.b[1])<<8 | uint32(r.b[2])<<16 | uint32(r.b[3])<<24
	r.b = r.b[4:]
	return v
}

func (r *rd) take(n int) []byte {
	if r.err != nil || len(r.b) < n {
		r.err = errShort
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// Good frames symmetrically: byte, length-prefixed payload, uint32.
type Good struct {
	id  byte
	n   uint32
	pay []byte
}

func (g *Good) Snapshot() []byte {
	b := append([]byte(nil), g.id)
	b = appendU32(b, uint32(len(g.pay)))
	b = append(b, g.pay...)
	b = appendU32(b, g.n)
	return b
}

func (g *Good) Restore(data []byte) error {
	r := &rd{b: data}
	g.id = r.u8()
	n := r.u32()
	g.pay = r.take(int(n))
	g.n = r.u32()
	return r.err
}

// Opt uses the presence-flag idiom on both sides; the terminal branch
// flattens away and the shapes agree.
type Opt struct {
	set bool
	v   uint32
}

func (o *Opt) Snapshot() []byte {
	if !o.set {
		return append([]byte(nil), 0)
	}
	b := append([]byte(nil), 1)
	return appendU32(b, o.v)
}

func (o *Opt) Restore(data []byte) error {
	r := &rd{b: data}
	if r.u8() == 0 {
		o.set = false
		return r.err
	}
	o.set = true
	o.v = r.u32()
	return r.err
}

// Swapped decodes its fields in the opposite order from the encoder.
type Swapped struct {
	id byte
	n  uint32
}

func (s *Swapped) Snapshot() []byte {
	b := append([]byte(nil), s.id)
	return appendU32(b, s.n)
}

func (s *Swapped) Restore(data []byte) error {
	r := &rd{b: data}
	s.n = uint32(r.u32()) // want "Restore decodes a 4-byte field where Snapshot encodes a 1-byte field .* asymmetric for Swapped"
	s.id = r.u8()
	return r.err
}

// Missing decodes one field fewer than the encoder wrote.
type Missing struct {
	a byte
	z uint32
}

func (m *Missing) Snapshot() []byte {
	b := append([]byte(nil), m.a)
	return appendU32(b, m.z)
}

func (m *Missing) Restore(data []byte) error { // want "Restore decodes nothing \(the shape ends\) where Snapshot encodes a 4-byte field .* asymmetric for Missing"
	r := &rd{b: data}
	m.a = r.u8()
	return r.err
}

// Looped reads a narrower element inside the repeated group than the
// encoder wrote; the divergence surfaces inside the loop bodies.
type Looped struct {
	vals []uint32
}

func (l *Looped) Snapshot() []byte {
	b := appendU32(nil, uint32(len(l.vals)))
	for _, v := range l.vals {
		b = appendU32(b, v)
	}
	return b
}

func (l *Looped) Restore(data []byte) error {
	r := &rd{b: data}
	n := int(r.u32())
	l.vals = l.vals[:0]
	for i := 0; i < n; i++ {
		l.vals = append(l.vals, uint32(r.u8())) // want "Restore decodes a 1-byte field where Snapshot encodes a 4-byte field .* asymmetric for Looped"
	}
	return r.err
}
