// Package hotalloc is a lint fixture: every allocating construct inside a
// function reachable from a //lint:hotpath root must be flagged at its
// exact line; cold panic paths, bounded (unknown-callee) calls, value
// composite literals, the m[string(b)] map-lookup pattern, and
// //lint:ignore suppressions must stay silent.
package hotalloc

type kernel struct {
	buf  []int
	outs []string
}

type pair struct{ a, b int }

func box(v any) { _ = v }

// badKernel is the deliberately allocating kernel: one construct per line.
//
//lint:hotpath
func (k *kernel) badKernel(n int, bs []byte) {
	s := make([]int, n)      // want "make allocates in hot function"
	p := new(int)            // want "new allocates in hot function"
	_ = []int{1, 2}          // want "slice literal allocates"
	_ = map[int]int{}        // want "map literal allocates"
	q := &kernel{}           // want "address-of composite literal allocates"
	k.buf = append(k.buf, n) // want "append may grow its backing array"
	msg := string(bs)        // want "string conversion allocates"
	msg2 := msg + "!"        // want "string concatenation allocates"
	f := func() {}           // want "function literal allocates a closure"
	g := k.step              // want "method value allocates a closure"
	go k.step(0)             // want "go statement allocates a goroutine"
	box(n)                   // want "interface boxing of int allocates"
	_ = pair{a: 1, b: 2}     // value struct literal: no allocation
	f()
	g(0)
	_, _, _, _ = s, p, q, msg2
}

func (k *kernel) step(i int) {
	k.buf[0] = i
}

// run is a root; hop1/hop2 are only reachable through it, so hop2's
// finding must carry the two-hop chain.
//
//lint:hotpath
func (k *kernel) run(iters int) {
	for i := 0; i < iters; i++ {
		k.hop1()
	}
}

func (k *kernel) hop1() { k.hop2() }

func (k *kernel) hop2() {
	k.buf = append(k.buf, 1) // want "append may grow its backing array in hot function \(\*kernel\)\.hop2 \(hot path: \(\*kernel\)\.run → \(\*kernel\)\.hop1 → \(\*kernel\)\.hop2\)"
}

// kernels mirrors core.KernelBenchmarks: the returned run closure is the
// hot root, annotated on the line above the literal. The builder itself
// (everything before the return) is setup and may allocate freely.
func kernels() func(int) {
	k := &kernel{buf: make([]int, 0, 64)}
	//lint:hotpath
	return func(iters int) {
		for i := 0; i < iters; i++ {
			k.litHop(i)
		}
	}
}

func (k *kernel) litHop(i int) {
	_ = new(kernel) // want "new allocates in hot function \(\*kernel\)\.litHop \(hot path: kernels\$1 → \(\*kernel\)\.litHop\)"
	_ = i
}

// guarded's allocation sits on a panic-terminated cold path: not flagged.
//
//lint:hotpath
func (k *kernel) guarded(fail bool) {
	if fail {
		k.outs = append(k.outs, "boom")
		panic("boom")
	}
}

// viaFunc cannot see through the function value: whatever it allocates is
// out of scope (bounded analysis), and allocHelper itself is not hot.
//
//lint:hotpath
func (k *kernel) viaFunc(f func()) {
	f()
}

func allocHelper() []int { return make([]int, 8) }

// lookup uses the compiler-recognized non-allocating map-index pattern.
//
//lint:hotpath
func lookup(m map[string]int, b []byte) int {
	return m[string(b)]
}

// warm shows the suppression contract: the intentional warm-up allocation
// carries an auditable //lint:ignore with a reason.
//
//lint:hotpath
func (k *kernel) warm(n int) {
	if k.buf == nil {
		//lint:ignore hotalloc warm-up: scratch sized once, reused forever after
		k.buf = make([]int, 0, n)
	}
}

// recAlloc allocates inside a recursive hot function: reachability must
// converge on the cycle and still flag the construct.
//
//lint:hotpath
func recAlloc(n int) []int {
	if n == 0 {
		return nil
	}
	_ = recAlloc(n - 1)
	return make([]int, 1) // want "make allocates in hot function recAlloc"
}

var _ = allocHelper
var _ = kernels
