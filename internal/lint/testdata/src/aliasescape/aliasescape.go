// Package aliasescape exercises the aliasescape analyzer: a pooled object
// escapes into long-lived state, an emission buffer, or a channel, and is
// then released anyway — the escaped alias now points at recycled memory.
package aliasescape

type item struct {
	n int
}

type enc struct {
	//lint:pooled freelist recycled item backings
	free []*item

	slot    *item
	emitted []*item
	ch      chan *item
}

//lint:pooled acquire pops a recycled item off the freelist
func (e *enc) get() *item {
	if n := len(e.free); n > 0 {
		it := e.free[n-1]
		e.free = e.free[:n-1]
		return it
	}
	return &item{}
}

//lint:pooled release pushes an item back onto the freelist
func (e *enc) put(it *item) {
	e.free = append(e.free, it)
}

// storeThenRelease parks the object in live state and then recycles it:
// e.slot now points at pooled memory.
func (e *enc) storeThenRelease() {
	it := e.get()
	e.slot = it
	e.put(it) // want "released after an alias escaped.*stored into e.slot"
}

// emitThenRelease appends the object to an emission buffer and recycles it.
func (e *enc) emitThenRelease() {
	it := e.get()
	e.emitted = append(e.emitted, it)
	e.put(it) // want "released after an alias escaped.*stored into e.emitted"
}

// sendThenRelease hands the object to another goroutine and recycles it.
func (e *enc) sendThenRelease() {
	it := e.get()
	e.ch <- it
	e.put(it) // want "released after an alias escaped.*sent on a channel"
}

// branchEscape escapes on one arm only; the release after the join is
// flagged for that path.
func (e *enc) branchEscape(flag bool) {
	it := e.get()
	if flag {
		e.slot = it
	}
	e.put(it) // want "released after an alias escaped"
}

// handOff escapes without releasing: ownership transfers, clean.
func (e *enc) handOff() {
	it := e.get()
	e.emitted = append(e.emitted, it)
}

// copyOut deep-copies before releasing: the escape is of the copy, clean.
func (e *enc) copyOut() {
	it := e.get()
	cp := &item{n: it.n}
	e.emitted = append(e.emitted, cp)
	e.put(it)
}

// localOnly stores into a local container that dies with the call, then
// releases; clean.
func (e *enc) localOnly() {
	it := e.get()
	locals := make([]*item, 0, 1)
	locals = append(locals, it)
	e.put(it)
	_ = locals
}
