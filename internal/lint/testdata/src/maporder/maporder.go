// Package maporder is a lint fixture: ranging over a map while feeding an
// ordered output must be flagged unless a genuine sort runs downstream.
package maporder

import (
	"fmt"
	"io"
	"sort"
)

func badAppend(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want "appends to a slice built outside it"
		out = append(out, k)
	}
	return out
}

func badSend(m map[string]int, ch chan string) {
	for k := range m { // want "sends on a channel"
		ch <- k
	}
}

func badWrite(m map[string]int, w io.Writer) {
	for k, v := range m { // want "calls Fprintf"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// sort.Search inspects without ordering; it must not count as a sort.
func badSearchIsNotSort(m map[string]int, out []int) []int {
	for _, v := range m { // want "appends to a slice built outside it"
		out = append(out, v)
	}
	sort.SearchInts(out, 1)
	return out
}

func goodSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func goodSliceRange(xs []string, ch chan string) {
	for _, x := range xs {
		ch <- x
	}
}

func goodLocalAccumulator(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
