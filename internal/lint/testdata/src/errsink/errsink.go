// Package errsink is a lint fixture: on state paths an error value must
// not be discarded, dropped at statement position, overwritten before it
// is checked, or left unread when the function ends.
package errsink

import "errors"

var errBoom = errors.New("boom")

func open() error { return errBoom }

func parse() (int, error) { return 0, errBoom }

func discardCall() {
	_ = open() // want "error result of open is discarded"
}

func discardTuple() int {
	n, _ := parse() // want "error result of parse is discarded"
	return n
}

func discardValue() {
	e := open()
	_ = e // want "error value is discarded"
}

func dropStatement() {
	open() // want "call to open drops its error result"
}

func dropDeferred() {
	defer open() // want "deferred call to open drops its error result"
}

func dropGo() {
	go open() // want "go call to open drops its error result"
}

func overwrite() error {
	err := open()
	err = open() // want "err is reassigned before the error assigned at line \d+ is checked"
	return err
}

func neverChecked() (n int, err error) {
	err = open() // want "error assigned to err is never checked"
	return 7, nil
}

func inLiteral() {
	f := func() {
		_ = open() // want "error result of open is discarded"
	}
	f()
}

// --- durable-path shapes: fsync and close errors are load-bearing ---

// file mimics the durable backend's handle: Sync and Close both report
// whether the kernel actually promised the bytes.
type file struct{}

func (file) Sync() error  { return errBoom }
func (file) Close() error { return errBoom }

// droppedSync: an unchecked fsync means the manifest may reference bytes
// the kernel never promised durable.
func droppedSync(f file) {
	f.Sync() // want "call to f.Sync drops its error result"
}

// droppedClose: a deferred Close whose error vanishes loses the last
// flush's verdict.
func droppedClose(f file) {
	defer f.Close() // want "deferred call to f.Close drops its error result"
}

// discardedSync: explicitly blanking the fsync error is the same bug with
// a paper trail.
func discardedSync(f file) {
	_ = f.Sync() // want "error result of f.Sync is discarded"
}

// syncThenCloseOverwrite: the Close error clobbers an unchecked Sync
// error — the torn write the Sync reported is silently forgotten.
func syncThenCloseOverwrite(f file) error {
	err := f.Sync()
	err = f.Close() // want "err is reassigned before the error assigned at line \d+ is checked"
	return err
}

// syncJoinedClose is the clean idiom the durable backend uses: every
// error path joins the Close verdict instead of dropping it.
func syncJoinedClose(f file) error {
	if err := f.Sync(); err != nil {
		return join(err, f.Close())
	}
	return f.Close()
}

func join(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// --- clean shapes the analyzer must stay silent on ---

// checked is the straight-line idiom.
func checked() error {
	err := open()
	if err != nil {
		return err
	}
	return nil
}

// branchChecked: a read on any syntactic path counts.
func branchChecked(flag bool) error {
	err := open()
	if flag {
		return err
	}
	return nil
}

// nilReset: assigning nil is an explicit reset, not a pending error.
func nilReset() (err error) {
	err = open()
	if err != nil {
		return err
	}
	err = nil
	return
}

// loopCarried: a variable the loop body may read next iteration is not
// reported from the straight-line walk.
func loopCarried(xs []int) error {
	var firstErr error
	for range xs {
		if e := open(); e != nil && firstErr == nil {
			firstErr = e
		}
	}
	return firstErr
}

// closureChecked: capture by a closure escapes the straight-line view and
// counts as a potential check.
func closureChecked() func() error {
	err := open()
	return func() error { return err }
}
