// Package poolsafe exercises the poolsafe analyzer: use-after-release,
// double release, leaks on exit paths, still-reachable releases, and the
// interprocedural summary through unannotated helpers.
package poolsafe

import (
	"errors"
	"sync"
)

var errBoom = errors.New("boom")

type val struct {
	n int
}

type op struct {
	//lint:pooled freelist recycled val backings
	free []*val

	byKey map[int]*val
	live  []*val
}

//lint:pooled acquire pops a recycled val off the freelist
func (o *op) getVal() *val {
	if n := len(o.free); n > 0 {
		v := o.free[n-1]
		o.free = o.free[:n-1]
		return v
	}
	return &val{}
}

//lint:pooled release pushes a val back onto the freelist
func (o *op) putVal(v *val) {
	o.free = append(o.free, v)
}

// useAfter reads a field of a value already handed back to the pool.
func (o *op) useAfter() int {
	v := o.getVal()
	o.putVal(v)
	return v.n // want "pooled v used after release"
}

// double releases the same value twice.
func (o *op) double() {
	v := o.getVal()
	o.putVal(v)
	o.putVal(v) // want "released twice"
}

// branchy releases on one arm only; the use after the join is a
// use-after-release on that path.
func (o *op) branchy(flag bool) int {
	v := o.getVal()
	if flag {
		o.putVal(v)
	}
	return v.n // want "pooled v used after release"
}

// leaky drops an acquired value on the error path: the pool never sees it
// again.
func (o *op) leaky(flag bool) error {
	v := o.getVal()
	if flag {
		return errBoom // want "leaks on this exit path"
	}
	o.putVal(v)
	return nil
}

// recycleBoth is an unannotated helper; its release effect is derived
// interprocedurally from the annotated putVal.
func (o *op) recycleBoth(v *val) {
	o.putVal(v)
}

// helperChain releases through the helper, so the use after the call is a
// use-after-release.
func (o *op) helperChain() int {
	v := o.getVal()
	o.recycleBoth(v)
	return v.n // want "pooled v used after release"
}

// reachable recycles an object that o.byKey still points at.
func (o *op) reachable(k int) {
	o.putVal(o.byKey[k]) // want "still reachable through o.byKey"
}

// reachableOK severs the map entry, the established recycle idiom.
func (o *op) reachableOK(k int) {
	o.putVal(o.byKey[k])
	delete(o.byKey, k)
}

// recycleLoop is the steady-state acquire/use/release loop; clean.
func (o *op) recycleLoop(keys []int) int {
	total := 0
	for _, k := range keys {
		v := o.getVal()
		v.n = k
		total += v.n
		o.putVal(v)
	}
	return total
}

// park stores the value into live state and does not release it; clean
// (the release happens elsewhere, through a later load).
func (o *op) park(k int) {
	v := o.getVal()
	v.n = k
	o.live = append(o.live, v)
}

//lint:pooled pool recycled byte buffers
var bufPool sync.Pool

// poolTwice releases a sync.Pool object twice.
func poolTwice() {
	b := bufPool.Get()
	bufPool.Put(b)
	bufPool.Put(b) // want "released twice"
}

// poolClean is the plain Get/Put round trip; clean.
func poolClean() {
	b := bufPool.Get()
	bufPool.Put(b)
}
