package poolsafe

// Directive misuse: every malformed or misattached //lint:pooled is
// reported so an annotation typo cannot silently disable the layer. The
// `want` assertions use the block form because a line comment would be
// swallowed by the directive's own comment text.

/* want "needs a role" */ //lint:pooled
var noRole int

/* want "missing a reason" */ //lint:pooled freelist
var noReason []int

/* want "does not attach to a declaration" */ //lint:pooled scratch floating annotation with nothing under it

var notAPool int /* want "pool on a non-sync.Pool declaration" */ //lint:pooled pool not actually a sync.Pool

var notASlice map[int]int /* want "freelist on a non-slice declaration" */ //lint:pooled freelist not a slice

/* want "acquire on a function with no results" */ //lint:pooled acquire returns nothing
func acquiresNothing() {}

func releasesNothing() {} /* want "release on a function with no parameters" */ //lint:pooled release takes nothing

/* want "cannot annotate a function" */ //lint:pooled scratch on a function
func scratchFunc() {}

var acquireVar []int /* want "cannot annotate a variable or field" */ //lint:pooled acquire on a variable

func useDirectiveDecls() (int, []int, int, map[int]int, []int) {
	acquiresNothing()
	releasesNothing()
	scratchFunc()
	return noRole, noReason, notAPool, notASlice, acquireVar
}
