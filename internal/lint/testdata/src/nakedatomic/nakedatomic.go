// Package nakedatomic is a lint fixture: a location touched by sync/atomic
// anywhere must be touched by sync/atomic everywhere. Plain loads and
// stores of such locations must be flagged; address-taking and
// composite-literal keys must not.
package nakedatomic

import "sync/atomic"

type counter struct {
	hits  int64
	total int64
}

func (c *counter) incr() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) read() int64 {
	return c.hits // want "hits is accessed with sync/atomic elsewhere"
}

func (c *counter) reset() {
	c.hits = 0 // want "hits is accessed with sync/atomic elsewhere"
}

func (c *counter) readTotal() int64 {
	return atomic.LoadInt64(&c.total)
}

func (c *counter) addTotal(n int64) {
	atomic.AddInt64(&c.total, n)
}

func newCounter() *counter {
	return &counter{hits: 0}
}

var running int32

func start() {
	atomic.StoreInt32(&running, 1)
}

func isRunning() bool {
	return running == 1 // want "running is accessed with sync/atomic elsewhere"
}

func runningPtr() *int32 {
	return &running
}
