// Package ignore is a lint fixture for the //lint:ignore directive: the
// same-line, own-line, and "all" forms must suppress; a wrong analyzer
// name must not; a directive with no reason is itself a finding.
package ignore

import "time"

func suppressedSameLine() int64 {
	return time.Now().UnixNano() //lint:ignore wallclock fixture exercises same-line suppression
}

func suppressedOwnLine() int64 {
	//lint:ignore wallclock fixture exercises own-line suppression
	return time.Now().UnixNano()
}

func suppressedAll() int64 {
	return time.Now().UnixNano() //lint:ignore all fixture exercises the all wildcard
}

func wrongAnalyzer() int64 {
	//lint:ignore maporder names a different analyzer, so wallclock still fires
	return time.Now().UnixNano() // want "time\.Now reads the wall clock"
}

func missingReason() int64 {
	/* want "directive is missing a reason" */ //lint:ignore wallclock
	return time.Now().UnixNano()               // want "time\.Now reads the wall clock"
}
