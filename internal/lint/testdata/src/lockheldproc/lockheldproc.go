// Package lockheldproc is a lint fixture for the interprocedural half of
// lockheld-send: calls to helpers that (transitively) block on a channel
// while a mutex is held must be flagged with the witness call chain;
// bounded cases — function values, interface methods, goroutine launches,
// select-default helpers — must stay silent.
package lockheldproc

import "sync"

type node struct {
	mu  sync.Mutex
	out chan int
}

// send blocks directly; it is clean on its own (no lock held here).
func (n *node) send() { n.out <- 1 }

// forward blocks one hop away, forward2 two hops away.
func (n *node) forward()  { n.send() }
func (n *node) forward2() { n.forward() }

func (n *node) badDirectHelper() {
	n.mu.Lock()
	n.send() // want "call to \(\*node\)\.send while n\.mu is held may block"
	n.mu.Unlock()
}

func (n *node) badOneHop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.forward() // want "call to \(\*node\)\.forward while n\.mu is held may block \(\(\*node\)\.forward → \(\*node\)\.send; channel send at lockheldproc\.go:16\)"
}

func (n *node) badTwoHop() {
	n.mu.Lock()
	n.forward2() // want "\(\(\*node\)\.forward2 → \(\*node\)\.forward → \(\*node\)\.send; channel send at lockheldproc\.go:16\)"
	n.mu.Unlock()
}

// pump blocks and recurses; the fixpoint must converge and still flag it.
func (n *node) pump(k int) {
	if k <= 0 {
		return
	}
	n.out <- k
	n.pump(k - 1)
}

func (n *node) badRecursive() {
	n.mu.Lock()
	n.pump(3) // want "call to \(\*node\)\.pump while n\.mu is held may block"
	n.mu.Unlock()
}

// Mutual recursion with no blocking op anywhere converges to non-blocking.
func (n *node) ping(k int) {
	if k > 0 {
		n.pong(k - 1)
	}
}

func (n *node) pong(k int) {
	if k > 0 {
		n.ping(k - 1)
	}
}

func (n *node) goodMutualRecursion() {
	n.mu.Lock()
	n.ping(8)
	n.mu.Unlock()
}

// Unknown callees are bounded: a function value is never followed, even
// when the value obviously blocks.
func (n *node) goodFuncValue(f func()) {
	n.mu.Lock()
	f()
	n.mu.Unlock()
}

type sender interface{ Send() }

// Interface dispatch is bounded the same way.
func (n *node) goodInterface(s sender) {
	n.mu.Lock()
	s.Send()
	n.mu.Unlock()
}

// A goroutine launch cannot block the caller; the lock is irrelevant to it.
func (n *node) goodGoHelper() {
	n.mu.Lock()
	go n.send()
	n.mu.Unlock()
}

// A helper whose channel op is guarded by a select default never blocks.
func (n *node) trySend() {
	select {
	case n.out <- 1:
	default:
	}
}

func (n *node) goodTrySend() {
	n.mu.Lock()
	n.trySend()
	n.mu.Unlock()
}

// Deferred calls run LIFO: a blocking helper deferred after the deferred
// unlock executes while the lock is still held.
func (n *node) badDeferredBlocker() {
	n.mu.Lock()
	defer n.mu.Unlock()
	defer n.send() // want "deferred call to \(\*node\)\.send runs before the deferred n\.mu\.Unlock and may block"
}

// Releasing before the call keeps the helper clean no matter what it does.
func (n *node) goodReleaseFirst() {
	n.mu.Lock()
	k := cap(n.out)
	n.mu.Unlock()
	n.forward2()
	_ = k
}
