// Package snapcover is a lint fixture: every field of a Snapshot/Restore
// state type must be serialized by the encode root, repopulated by the
// decode root, or annotated //lint:ephemeral; derived annotations must be
// rebuilt on the restore path, and annotations must not contradict the
// encoder.
package snapcover

import "errors"

var errTruncated = errors.New("truncated")

// State pairs Snapshot with Restore; its fields exercise every verdict.
type State struct {
	a uint8 // serialized and repopulated: clean
	b uint8 // want "field State\.b is not serialized by Snapshot and not annotated //lint:ephemeral"
	c uint8 // want "field State\.c is not repopulated by Restore and not annotated //lint:ephemeral"
	d uint8 // want "field State\.d is not serialized by Snapshot" "field State\.d is not repopulated by Restore"
	//lint:ephemeral per-call scratch buffer, rebuilt from zero on first use
	tmp []byte
	//lint:ephemeral the annotation lies: the encode path writes this field
	e uint8 // want "field State\.e is annotated //lint:ephemeral but Snapshot serializes it; drop the annotation or the encoding"
	//lint:ephemeral derived index over a, rebuilt by reindex
	idx map[uint8]bool
	//lint:ephemeral derived never actually rebuilt on the restore path
	stale uint8 // want "field State\.stale is annotated //lint:ephemeral derived but no function reachable from Restore repopulates it"
}

// Snapshot serializes a and c directly and e through a helper: the
// helper's field touch must count via call-graph reachability.
func (s *State) Snapshot() []byte {
	b := []byte{s.a, s.c}
	return s.encTail(b)
}

func (s *State) encTail(b []byte) []byte {
	return append(b, s.e)
}

func (s *State) Restore(data []byte) error {
	if len(data) < 2 {
		return errTruncated
	}
	s.a = data[0]
	s.b = data[1]
	s.reindex()
	return nil
}

// reindex rebuilds the derived index; reachable from Restore, so idx
// counts as repopulated.
func (s *State) reindex() {
	s.idx = map[uint8]bool{s.a: true}
}

// Counter exercises the other discovery spellings: OnBarrier as the
// encode root and a package-level FromSnapshot constructor as the decode
// root (whose composite-literal keys count as repopulation).
type Counter struct {
	n    uint64
	seen uint8 // want "field Counter\.seen is not serialized by OnBarrier" "field Counter\.seen is not repopulated by CounterFromSnapshot"
}

func (c *Counter) OnBarrier(id int) []byte {
	return []byte{byte(c.n)}
}

func CounterFromSnapshot(b []byte) (*Counter, error) {
	if len(b) != 1 {
		return nil, errTruncated
	}
	return &Counter{n: uint64(b[0])}, nil
}

// Plain is not a state pair, so directives inside it cannot attach to any
// audited field. The want comments use the block form because a line
// comment cannot share a line with the directive it asserts about.
type Plain struct {
	/* want "//lint:ephemeral directive is missing a reason" */ //lint:ephemeral
	x                                                           uint8
	/* want "//lint:ephemeral directive does not annotate a field of any Snapshot/Restore state type" */ //lint:ephemeral stray: Plain has no Snapshot/Restore pair
	y                                                                                                    uint8
}

// use keeps Plain's fields referenced so the fixture type-checks cleanly.
func (p *Plain) use() uint8 { return p.x + p.y }
