// Package lockheld is a lint fixture: blocking channel operations under a
// held sync.Mutex/RWMutex must be flagged; the release-first shapes and
// guarded selects must not.
package lockheld

import "sync"

type engine struct {
	mu  sync.Mutex
	out chan int
}

func (e *engine) badSend() {
	e.mu.Lock()
	e.out <- 1 // want "channel send while e\.mu is held"
	e.mu.Unlock()
}

func (e *engine) badRecv(in chan int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	<-in // want "blocking channel receive while e\.mu is held"
}

func (e *engine) badSelect(in chan int) {
	e.mu.Lock()
	select { // want "select with no default blocks while e\.mu is held"
	case v := <-in:
		_ = v
	}
	e.mu.Unlock()
}

func (e *engine) badRange(in chan int) {
	e.mu.Lock()
	for range in { // want "range over channel while e\.mu is held"
	}
	e.mu.Unlock()
}

type table struct {
	rw   sync.RWMutex
	sink chan string
}

func (t *table) badReadLocked() {
	t.rw.RLock()
	t.sink <- "x" // want "channel send while t\.rw is held"
	t.rw.RUnlock()
}

func (e *engine) goodReleaseFirst() {
	e.mu.Lock()
	v := len(e.out)
	e.mu.Unlock()
	e.out <- v
}

func (e *engine) goodGuardedSelect(in chan int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case v := <-in:
		_ = v
	default:
	}
}

func (e *engine) goodBranchReleases(in chan int, fast bool) {
	e.mu.Lock()
	if fast {
		e.mu.Unlock()
		<-in
		return
	}
	e.mu.Unlock()
}
