// Package lockheld is a lint fixture: blocking channel operations under a
// held sync.Mutex/RWMutex must be flagged; the release-first shapes and
// guarded selects must not.
package lockheld

import "sync"

type engine struct {
	mu  sync.Mutex
	out chan int
}

func (e *engine) badSend() {
	e.mu.Lock()
	e.out <- 1 // want "channel send while e\.mu is held"
	e.mu.Unlock()
}

func (e *engine) badRecv(in chan int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	<-in // want "blocking channel receive while e\.mu is held"
}

func (e *engine) badSelect(in chan int) {
	e.mu.Lock()
	select { // want "select with no default blocks while e\.mu is held"
	case v := <-in:
		_ = v
	}
	e.mu.Unlock()
}

func (e *engine) badRange(in chan int) {
	e.mu.Lock()
	for range in { // want "range over channel while e\.mu is held"
	}
	e.mu.Unlock()
}

type table struct {
	rw   sync.RWMutex
	sink chan string
}

func (t *table) badReadLocked() {
	t.rw.RLock()
	t.sink <- "x" // want "channel send while t\.rw is held"
	t.rw.RUnlock()
}

func (e *engine) goodReleaseFirst() {
	e.mu.Lock()
	v := len(e.out)
	e.mu.Unlock()
	e.out <- v
}

func (e *engine) goodGuardedSelect(in chan int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case v := <-in:
		_ = v
	default:
	}
}

func (e *engine) goodBranchReleases(in chan int, fast bool) {
	e.mu.Lock()
	if fast {
		e.mu.Unlock()
		<-in
		return
	}
	e.mu.Unlock()
}

// Over-extension regression: every fall-through branch releases, so the
// held region ends at the join and the send is clean.
func (e *engine) goodAllBranchesRelease(fast bool) {
	e.mu.Lock()
	if fast {
		e.mu.Unlock()
	} else {
		e.mu.Unlock()
	}
	e.out <- 1
}

// Under-extension regression: a lock acquired inside a branch may still be
// held at the join (may-held union).
func (e *engine) badBranchAcquires(cond bool) {
	if cond {
		e.mu.Lock()
	}
	e.out <- 1 // want "channel send while e\.mu is held"
	if cond {
		e.mu.Unlock()
	}
}

// A terminated branch contributes nothing to the join: the early-return
// path's unlock must not leak into the fall-through state.
func (e *engine) badTerminatedBranchRelease(fast bool) {
	e.mu.Lock()
	if fast {
		e.mu.Unlock()
		return
	}
	e.out <- 1 // want "channel send while e\.mu is held"
	e.mu.Unlock()
}

// defer mu.Unlock() keeps the lock held past later early-return branches.
func (e *engine) badDeferHoldsThroughBranches(fast bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if fast {
		return
	}
	e.out <- 1 // want "channel send while e\.mu is held"
}

// RWMutex read-lock variant of the early-return shape: both paths release
// before their channel op, so neither send is flagged.
func (t *table) goodDeferEarlyReturn(cond bool) {
	t.rw.RLock()
	if cond {
		t.rw.RUnlock()
		t.sink <- "fast"
		return
	}
	t.rw.RUnlock()
	t.sink <- "slow"
}

// Switch clauses join like if branches: every case releases, and the
// missing default means the pre-switch (held) state also falls through.
func (e *engine) badSwitchNoDefault(k int) {
	e.mu.Lock()
	switch k {
	case 0:
		e.mu.Unlock()
	case 1:
		e.mu.Unlock()
	}
	e.out <- 1 // want "channel send while e\.mu is held"
}

func (e *engine) goodSwitchAllRelease(k int) {
	e.mu.Lock()
	switch k {
	case 0:
		e.mu.Unlock()
	default:
		e.mu.Unlock()
	}
	e.out <- 1
}
