// Package supervisedgo is a lint fixture: every goroutine spawned in the
// runtime packages must enter through a panic-capturing supervisor — by
// spawning a *supervised* entry point directly, or by wrapping the body in
// one inside the spawned literal. Bare spawns are flagged; //lint:ignore
// with a reason is the deliberate escape hatch.
package supervisedgo

import "sync"

type rt struct{}

func (r *rt) runSupervised(wg *sync.WaitGroup) { wg.Done() }
func (r *rt) run()                             {}

// RunSupervised is a package-level supervisor wrapper.
func RunSupervised(fn func()) {
	defer func() { recover() }()
	fn()
}

func goodDirect(wg *sync.WaitGroup) {
	r := &rt{}
	go r.runSupervised(wg)
}

func goodWrappedLiteral() {
	go func() {
		RunSupervised(func() {})
	}()
}

func badBareMethod() {
	r := &rt{}
	go r.run() // want "outside the supervisor"
}

func badBareLiteral() {
	go func() { // want "outside the supervisor"
		_ = 1 + 1
	}()
}

func badNamedFunc() {
	go helper() // want "outside the supervisor"
}

func helper() {}

func ignoredTeardown(done chan struct{}) {
	//lint:ignore supervised-go fixture: close-only teardown helper cannot panic
	go func() {
		close(done)
	}()
}
