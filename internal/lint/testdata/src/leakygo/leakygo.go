// Package leakygo is a lint fixture: goroutines blocking on a captured
// channel with no shutdown signal must be flagged; each recognized signal
// shape (close, range, comma-ok, multi-case select, context) must not.
package leakygo

import "context"

func badRecv() {
	leak := make(chan int)
	go func() { // want "blocks on captured channel leak"
		for {
			<-leak
		}
	}()
}

func badSend() {
	sink := make(chan int)
	go func() { // want "blocks on captured channel sink"
		sink <- 1
	}()
}

func goodClosed() {
	work := make(chan int)
	go func() {
		for {
			<-work
		}
	}()
	close(work)
}

func goodRange(src chan int) {
	go func() {
		for v := range src {
			_ = v
		}
	}()
}

func goodCommaOk(src chan int) {
	go func() {
		for {
			v, ok := <-src
			if !ok {
				return
			}
			_ = v
		}
	}()
}

func goodContext(ctx context.Context, src chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-src:
				_ = v
			}
		}
	}()
}
