// Package wallclock is a lint fixture: every time.Now/Since/Until call
// below must be flagged; reads through the injected clock must not.
package wallclock

import "time"

var nowNanos = func() int64 { return 0 }

func deploy() int64 {
	t := time.Now() // want "time\.Now reads the wall clock"
	_ = t
	return nowNanos()
}

func latency(start time.Time) time.Duration {
	return time.Since(start) // want "time\.Since reads the wall clock"
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want "time\.Until reads the wall clock"
}

func injected() time.Duration {
	// Reading the injected clock and using time's types is fine.
	return time.Duration(nowNanos())
}
