// Package scratchlocal exercises the scratchlocal analyzer: aliases of a
// declared scratch surface must not outlive the call that borrowed them.
package scratchlocal

type agg struct {
	//lint:pooled scratch per-fire key scratch, truncated between fires
	tmp []int

	//lint:pooled scratch per-fire class scratch, truncated between fires
	cls []int

	keep [][]int
	slot []int
	ch   chan []int
}

// storeEscape retains the scratch backing in long-lived state.
func (a *agg) storeEscape() {
	a.tmp = a.tmp[:0]
	a.tmp = append(a.tmp, 1)
	a.keep = append(a.keep, a.tmp) // want "scratch tmp stored into a.keep"
}

// assignEscape retains the scratch backing through a field store.
func (a *agg) assignEscape() {
	a.tmp = a.tmp[:0]
	a.slot = a.tmp // want "scratch tmp stored into a.slot"
}

// sendEscape hands the scratch backing to another goroutine's lifetime.
func (a *agg) sendEscape() {
	a.ch <- a.tmp // want "scratch tmp sent on a channel"
}

// goEscape passes the scratch backing to a goroutine.
func (a *agg) goEscape() {
	go consume(a.tmp) // want "scratch tmp passed to a goroutine"
}

func consume(xs []int) {}

// Borrow hands the scratch backing to an arbitrary caller: exported
// returns escape the package's control.
func (a *agg) Borrow() []int {
	return a.tmp // want "scratch tmp returned from exported"
}

// borrow is the in-package borrow helper idiom: an unexported return is the
// caller's problem, and the caller's own exits are still checked; clean.
func (a *agg) borrow() []int {
	return a.tmp
}

// scratchToScratch moves between two scratch surfaces of the same owner;
// both die with the call, clean.
func (a *agg) scratchToScratch() {
	a.cls = a.cls[:0]
	a.cls = append(a.cls, a.tmp...)
}

// localUse borrows, uses, and drops within the call; clean.
func (a *agg) localUse(k int) int {
	a.tmp = a.tmp[:0]
	a.tmp = append(a.tmp, k)
	total := 0
	for _, v := range a.tmp {
		total += v
	}
	return total
}

// deepCopy copies out of the scratch before retaining; clean.
func (a *agg) deepCopy() {
	a.tmp = a.tmp[:0]
	a.tmp = append(a.tmp, 1)
	cp := make([]int, len(a.tmp))
	copy(cp, a.tmp)
	a.keep = append(a.keep, cp)
}
