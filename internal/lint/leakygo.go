package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewLeakyGo builds the goroutine-teardown analyzer. Ad-hoc queries come
// and go at runtime (paper §3.1.1), so every long-lived goroutine an
// operator or driver spawns must have a shutdown path: the channel it
// blocks on must be closed somewhere, or the goroutine must watch a
// context / done channel. The analyzer flags `go func() { ... }()`
// launches whose body blocks on a captured channel with none of those
// signals in evidence:
//
//   - a `for range ch` loop is fine (terminates when the channel closes),
//   - a comma-ok receive is fine (the code observes closure),
//   - a select with a default or with multiple cases is fine (assumed to
//     include a cancel arm),
//   - any use of a context.Context in the body is fine,
//   - a close() of the same channel expression in the same file is fine.
func NewLeakyGo() *Analyzer {
	a := &Analyzer{
		Name: "leakygo",
		Doc:  "flags goroutines blocking on a captured channel with no close/context/done signal",
	}
	a.Run = func(p *Package) []Diagnostic {
		var diags []Diagnostic
		for _, f := range p.Files {
			closed := closedChannelExprs(p, f)
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := g.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				if ch := leakyChannel(p, lit, closed); ch != "" {
					diags = append(diags, a.Diag(p, g.Go,
						"goroutine blocks on captured channel %s with no close, context, or done signal in scope; it leaks on teardown", ch))
				}
				return true
			})
		}
		return diags
	}
	return a
}

// closedChannelExprs collects the rendered argument of every close() call
// in the file.
func closedChannelExprs(p *Package, f *ast.File) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "close" {
			return true
		}
		if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
			return true
		}
		out[types.ExprString(call.Args[0])] = true
		return true
	})
	return out
}

// leakyChannel returns the rendered channel expression a goroutine body
// blocks on with no shutdown signal, or "" when the body looks safe.
func leakyChannel(p *Package, lit *ast.FuncLit, closed map[string]bool) string {
	safe := false
	blocking := "" // first unguarded blocking op's channel
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if safe {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != lit {
				return false // nested goroutine bodies judged separately
			}
		case *ast.SelectStmt:
			cases := 0
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					if cc.Comm == nil {
						hasDefault = true
					} else {
						cases++
					}
				}
			}
			if hasDefault || cases >= 2 {
				safe = true
				return false
			}
		case *ast.RangeStmt:
			if isCapturedChan(p, lit, n.X) {
				safe = true // for range ch ends when the channel closes
				return false
			}
		case *ast.AssignStmt:
			// v, ok := <-ch observes closure.
			if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
				if u, ok := n.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					safe = true
					return false
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isCapturedChan(p, lit, n.X) && blocking == "" {
				blocking = types.ExprString(n.X)
			}
		case *ast.SendStmt:
			if isCapturedChan(p, lit, n.Chan) && blocking == "" {
				blocking = types.ExprString(n.Chan)
			}
		case *ast.Ident:
			if obj := p.Info.Uses[n]; obj != nil && obj.Type() != nil {
				if named, ok := obj.Type().(*types.Named); ok {
					o := named.Obj()
					if o.Pkg() != nil && o.Pkg().Path() == "context" && o.Name() == "Context" {
						safe = true // the body can watch ctx.Done()
						return false
					}
				}
			}
		}
		return true
	})
	if safe || blocking == "" || closed[blocking] {
		return ""
	}
	return blocking
}

// isCapturedChan reports whether e is channel-typed and rooted at a
// variable declared outside the function literal (i.e. captured).
func isCapturedChan(p *Package, lit *ast.FuncLit, e ast.Expr) bool {
	t := p.Info.Types[e].Type
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return false
	}
	id := rootIdent(e)
	if id == nil {
		return false
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}
