package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
)

// NewSnapSymmetry builds the snapshot-symmetry analyzer: for every
// Snapshot/Restore pair it reduces both sides to a normalized byte-shape —
// the sequence of fixed-width writes, variable-length writes, repeated
// groups, and conditional groups the function performs — and reports the
// first position where the decode shape diverges from the encode shape.
// A swap of two fields, a width mismatch, or a field read on only one side
// all surface here at vet time instead of as garbage state at recovery.
//
// The reduction understands the module's framing idioms:
//
//   - encode: `append(b, x)` is one byte per argument, `append(b, p...)`
//     is variable-length, binary.LittleEndian.AppendUintN is N/8 bytes;
//     helpers threading a []byte parameter to a []byte result are inlined,
//     as are function-literal payloads passed through parameters (the
//     snapSlicer pattern);
//   - decode: the byte-reader idiom — a struct carrying `b []byte` and
//     `err error` — advances with `r.b = r.b[K:]`, K constant for a
//     fixed-width read, anything else variable-length; functions and
//     methods taking the reader are inlined.
//
// Loops become repeated groups compared structurally (counts are runtime
// values). An `if` becomes a conditional group, with any reads in its
// init/cond emitted first; a branch that returns after emitting exactly
// the shape the fall-through path starts with is the presence-flag idiom
// and is flattened. Conditionals with else branches, switches, and calls
// through unbound function parameters are opaque: they compare equal only
// to an opaque node on the other side. Calls that do not thread the byte
// slice or the reader cannot move the cursor and are ignored.
func NewSnapSymmetry(scope []string) *Analyzer {
	a := &Analyzer{
		Name: "snapshot-symmetry",
		Doc:  "proves Restore consumes snapshot bytes in the exact shape Snapshot produces them",
	}
	a.RunModule = func(m *Module) []Diagnostic {
		var diags []Diagnostic
		declIdx := map[*Package]map[types.Object]*ast.FuncDecl{}
		idx := func(p *Package) map[types.Object]*ast.FuncDecl {
			if declIdx[p] == nil {
				declIdx[p] = funcDecls(p)
			}
			return declIdx[p]
		}
		for _, pair := range findStatePairs(m, scope) {
			encB := &shapeBuilder{p: pair.enc.Pkg, decls: idx(pair.enc.Pkg), stack: map[ast.Node]bool{}}
			enc := encB.blockShape(pair.enc.Body.List, nil)
			decB := &shapeBuilder{p: pair.dec.Pkg, decls: idx(pair.dec.Pkg), decode: true, stack: map[ast.Node]bool{}}
			dec := decB.blockShape(pair.dec.Body.List, nil)
			d := diffShapes(enc, dec)
			if d == nil {
				continue
			}
			pos := pair.dec.Fn.Pos()
			if d.dec != nil {
				pos = d.dec.pos
			}
			encDesc := describeShape(d.enc)
			if d.enc != nil {
				encDesc += " (" + shortPos(pair.enc.Pkg, d.enc.pos) + ")"
			}
			diags = append(diags, a.Diag(pair.dec.Pkg, pos,
				"%s decodes %s where %s encodes %s: snapshot framing is asymmetric for %s",
				pair.dec.Fn.Name(), describeShape(d.dec), pair.enc.Fn.Name(), encDesc, pair.name))
		}
		return diags
	}
	return a
}

type shapeKind int

const (
	shapeOp     shapeKind = iota // fixed-width read or write
	shapeVar                     // variable-length bytes
	shapeLoop                    // repeated group
	shapeCond                    // conditional group
	shapeOpaque                  // construct the reduction cannot model
)

// shapeNode is one element of a normalized byte-shape.
type shapeNode struct {
	kind  shapeKind
	width int // shapeOp only
	kids  []*shapeNode
	// terminal marks a conditional whose branch returns, enabling the
	// presence-flag flattening in normalizeShapes.
	terminal bool
	pos      token.Pos
}

// shapeBuilder reduces one side of a pair, inlining the package's helpers.
type shapeBuilder struct {
	p      *Package
	decls  map[types.Object]*ast.FuncDecl
	decode bool
	// stack guards against recursive helpers: re-entry reduces to opaque.
	stack map[ast.Node]bool
}

// funcDecls indexes a package's function and method declarations by their
// type-checker object, for body lookup when inlining.
func funcDecls(p *Package) map[types.Object]*ast.FuncDecl {
	out := map[types.Object]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := p.Info.Defs[fd.Name]; obj != nil {
					out[obj] = fd
				}
			}
		}
	}
	return out
}

func (sb *shapeBuilder) blockShape(stmts []ast.Stmt, bind map[types.Object]*ast.FuncLit) []*shapeNode {
	var out []*shapeNode
	for _, s := range stmts {
		sb.stmtShape(s, bind, &out)
	}
	return normalizeShapes(out)
}

func (sb *shapeBuilder) stmtShape(s ast.Stmt, bind map[types.Object]*ast.FuncLit, out *[]*shapeNode) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			sb.exprShape(r, bind, out)
		}
		if sb.decode {
			sb.advanceShape(x, out)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						sb.exprShape(v, bind, out)
					}
				}
			}
		}
	case *ast.ExprStmt:
		sb.exprShape(x.X, bind, out)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			sb.exprShape(r, bind, out)
		}
	case *ast.IfStmt:
		if x.Init != nil {
			sb.stmtShape(x.Init, bind, out)
		}
		sb.exprShape(x.Cond, bind, out)
		if x.Else != nil {
			*out = append(*out, &shapeNode{kind: shapeOpaque, pos: x.Pos()})
			return
		}
		kids := sb.blockShape(x.Body.List, bind)
		if len(kids) > 0 {
			*out = append(*out, &shapeNode{
				kind: shapeCond, kids: kids, terminal: endsInReturn(x.Body), pos: x.Pos(),
			})
		}
	case *ast.ForStmt:
		if x.Init != nil {
			sb.stmtShape(x.Init, bind, out)
		}
		sb.exprShape(x.Cond, bind, out)
		stmts := x.Body.List
		if x.Post != nil {
			stmts = append(stmts[:len(stmts):len(stmts)], x.Post)
		}
		if kids := sb.blockShape(stmts, bind); len(kids) > 0 {
			*out = append(*out, &shapeNode{kind: shapeLoop, kids: kids, pos: x.Pos()})
		}
	case *ast.RangeStmt:
		sb.exprShape(x.X, bind, out)
		if kids := sb.blockShape(x.Body.List, bind); len(kids) > 0 {
			*out = append(*out, &shapeNode{kind: shapeLoop, kids: kids, pos: x.Pos()})
		}
	case *ast.BlockStmt:
		for _, inner := range x.List {
			sb.stmtShape(inner, bind, out)
		}
	case *ast.LabeledStmt:
		sb.stmtShape(x.Stmt, bind, out)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		*out = append(*out, &shapeNode{kind: shapeOpaque, pos: x.Pos()})
	case *ast.SendStmt:
		sb.exprShape(x.Chan, bind, out)
		sb.exprShape(x.Value, bind, out)
		// GoStmt and DeferStmt run off the serial encode/decode path and
		// are ignored, like go edges in reachability.
	}
}

// exprShape walks an expression in evaluation order, emitting shape nodes
// for the byte-moving calls it contains.
func (sb *shapeBuilder) exprShape(e ast.Expr, bind map[types.Object]*ast.FuncLit, out *[]*shapeNode) {
	switch x := e.(type) {
	case nil:
	case *ast.CallExpr:
		sb.callShape(x, bind, out)
	case *ast.FuncLit:
		// Literal bodies count only where invoked, through a binding.
	case *ast.ParenExpr:
		sb.exprShape(x.X, bind, out)
	case *ast.UnaryExpr:
		sb.exprShape(x.X, bind, out)
	case *ast.StarExpr:
		sb.exprShape(x.X, bind, out)
	case *ast.BinaryExpr:
		sb.exprShape(x.X, bind, out)
		sb.exprShape(x.Y, bind, out)
	case *ast.SelectorExpr:
		sb.exprShape(x.X, bind, out)
	case *ast.IndexExpr:
		sb.exprShape(x.X, bind, out)
		sb.exprShape(x.Index, bind, out)
	case *ast.SliceExpr:
		sb.exprShape(x.X, bind, out)
		sb.exprShape(x.Low, bind, out)
		sb.exprShape(x.High, bind, out)
		sb.exprShape(x.Max, bind, out)
	case *ast.TypeAssertExpr:
		sb.exprShape(x.X, bind, out)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			sb.exprShape(el, bind, out)
		}
	case *ast.KeyValueExpr:
		sb.exprShape(x.Value, bind, out)
	}
}

func (sb *shapeBuilder) callShape(call *ast.CallExpr, bind map[types.Object]*ast.FuncLit, out *[]*shapeNode) {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		sb.exprShape(sel.X, bind, out)
	}
	for _, arg := range call.Args {
		sb.exprShape(arg, bind, out)
	}
	obj := calleeObj(sb.p, call)
	if !sb.decode {
		if b, ok := obj.(*types.Builtin); ok && b.Name() == "append" &&
			len(call.Args) > 0 && byteSliceType(sb.typeOf(call.Args[0])) {
			if call.Ellipsis != token.NoPos {
				*out = append(*out, &shapeNode{kind: shapeVar, pos: call.Pos()})
			} else if len(call.Args) > 1 {
				*out = append(*out, &shapeNode{kind: shapeOp, width: len(call.Args) - 1, pos: call.Pos()})
			}
			return
		}
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" {
			switch fn.Name() {
			case "AppendUint16":
				*out = append(*out, &shapeNode{kind: shapeOp, width: 2, pos: call.Pos()})
				return
			case "AppendUint32":
				*out = append(*out, &shapeNode{kind: shapeOp, width: 4, pos: call.Pos()})
				return
			case "AppendUint64":
				*out = append(*out, &shapeNode{kind: shapeOp, width: 8, pos: call.Pos()})
				return
			}
		}
	}
	switch o := obj.(type) {
	case *types.Func:
		if decl := sb.decls[o]; decl != nil && sb.inlinable(o) {
			sb.inline(decl, decl.Type, decl.Body, call, bind, out)
		}
	case *types.Var:
		if lit := bind[o]; lit != nil {
			sb.inline(lit, lit.Type, lit.Body, call, bind, out)
		} else if sig, ok := o.Type().Underlying().(*types.Signature); ok && sb.threadsState(sig) {
			// A call through an unbound function value could move the
			// cursor arbitrarily; refuse to guess.
			*out = append(*out, &shapeNode{kind: shapeOpaque, pos: call.Pos()})
		}
	}
}

// inlinable reports whether a called function participates in the framing:
// on the encode side it threads a []byte parameter to a []byte result, on
// the decode side it takes the byte-reader as receiver or parameter.
func (sb *shapeBuilder) inlinable(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sb.decode && sig.Recv() != nil && readerStruct(sig.Recv().Type()) {
		return true
	}
	return sb.threadsState(sig)
}

func (sb *shapeBuilder) threadsState(sig *types.Signature) bool {
	if sb.decode {
		for i := 0; i < sig.Params().Len(); i++ {
			if readerStruct(sig.Params().At(i).Type()) {
				return true
			}
		}
		return false
	}
	var param, result bool
	for i := 0; i < sig.Params().Len(); i++ {
		param = param || byteSliceType(sig.Params().At(i).Type())
	}
	for i := 0; i < sig.Results().Len(); i++ {
		result = result || byteSliceType(sig.Results().At(i).Type())
	}
	return param && result
}

// inline splices a callee's shape into the caller, binding any function
// literals (or already-bound parameters) the call passes along.
func (sb *shapeBuilder) inline(key ast.Node, ftype *ast.FuncType, body *ast.BlockStmt, call *ast.CallExpr, bind map[types.Object]*ast.FuncLit, out *[]*shapeNode) {
	if sb.stack[key] {
		*out = append(*out, &shapeNode{kind: shapeOpaque, pos: call.Pos()})
		return
	}
	inner := map[types.Object]*ast.FuncLit{}
	i := 0
	for _, fld := range ftype.Params.List {
		for _, name := range fld.Names {
			if i < len(call.Args) {
				switch arg := unparen(call.Args[i]).(type) {
				case *ast.FuncLit:
					inner[sb.p.Info.Defs[name]] = arg
				case *ast.Ident:
					if lit := bind[sb.p.Info.Uses[arg]]; lit != nil {
						inner[sb.p.Info.Defs[name]] = lit
					}
				}
			}
			i++
		}
	}
	sb.stack[key] = true
	kids := sb.blockShape(body.List, inner)
	delete(sb.stack, key)
	// Anchor spliced nodes at the call site: a mismatch against `r.u32()`
	// should point at the Restore line that called it, not at the shared
	// reader helper's interior.
	for _, k := range kids {
		k.pos = call.Pos()
	}
	*out = append(*out, kids...)
}

// advanceShape recognizes the reader's cursor movement: `r.b = r.b[K:]`.
func (sb *shapeBuilder) advanceShape(as *ast.AssignStmt, out *[]*shapeNode) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
		return
	}
	sel, ok := as.Lhs[0].(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "b" || !readerStruct(sb.typeOf(sel.X)) {
		return
	}
	sl, ok := unparen(as.Rhs[0]).(*ast.SliceExpr)
	if !ok || sl.Low == nil {
		return
	}
	if tv, ok := sb.p.Info.Types[sl.Low]; ok && tv.Value != nil {
		if w, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			*out = append(*out, &shapeNode{kind: shapeOp, width: int(w), pos: as.Pos()})
			return
		}
	}
	*out = append(*out, &shapeNode{kind: shapeVar, pos: as.Pos()})
}

func (sb *shapeBuilder) typeOf(e ast.Expr) types.Type {
	return sb.p.Info.Types[e].Type
}

// calleeObj resolves the object a call invokes, if syntactically evident.
func calleeObj(p *Package, call *ast.CallExpr) types.Object {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.Info.Uses[f]
	case *ast.SelectorExpr:
		return p.Info.Uses[f.Sel]
	}
	return nil
}

// readerStruct reports whether t is (a pointer to) the byte-reader idiom: a
// struct carrying the remaining input in `b []byte` and a sticky `err`.
func readerStruct(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	s, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	var hasB, hasErr bool
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		switch {
		case f.Name() == "b" && byteSliceType(f.Type()):
			hasB = true
		case f.Name() == "err" && errorType(f.Type()):
			hasErr = true
		}
	}
	return hasB && hasErr
}

func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

// normalizeShapes flattens the presence-flag idiom: a conditional branch
// that returns after emitting exactly what the fall-through path emits next
// (encode `if v { return append(b, 1) }; return append(b, 0)`, or a nil
// store writing just its absence flag) adds no framing of its own.
func normalizeShapes(list []*shapeNode) []*shapeNode {
	for changed := true; changed; {
		changed = false
		for i, n := range list {
			if n.kind == shapeCond && n.terminal && shapePrefix(n.kids, list[i+1:]) {
				list = append(list[:i], list[i+1:]...)
				changed = true
				break
			}
		}
	}
	return list
}

func shapePrefix(kids, rest []*shapeNode) bool {
	if len(kids) > len(rest) {
		return false
	}
	for i := range kids {
		if !shapeEqual(kids[i], rest[i]) {
			return false
		}
	}
	return true
}

func shapeEqual(a, b *shapeNode) bool {
	if a.kind != b.kind || a.width != b.width || len(a.kids) != len(b.kids) {
		return false
	}
	for i := range a.kids {
		if !shapeEqual(a.kids[i], b.kids[i]) {
			return false
		}
	}
	return true
}

// shapeDiff is the first point of divergence; a nil side means that shape
// ended while the other continued.
type shapeDiff struct {
	enc, dec *shapeNode
}

func diffShapes(enc, dec []*shapeNode) *shapeDiff {
	for i := 0; i < len(enc) || i < len(dec); i++ {
		var e, d *shapeNode
		if i < len(enc) {
			e = enc[i]
		}
		if i < len(dec) {
			d = dec[i]
		}
		if e == nil || d == nil {
			return &shapeDiff{enc: e, dec: d}
		}
		if e.kind != d.kind || e.width != d.width {
			return &shapeDiff{enc: e, dec: d}
		}
		if e.kind == shapeLoop || e.kind == shapeCond {
			if sub := diffShapes(e.kids, d.kids); sub != nil {
				return sub
			}
		}
	}
	return nil
}

func describeShape(n *shapeNode) string {
	if n == nil {
		return "nothing (the shape ends)"
	}
	switch n.kind {
	case shapeOp:
		return fmt.Sprintf("a %d-byte field", n.width)
	case shapeVar:
		return "variable-length bytes"
	case shapeLoop:
		return "a repeated group"
	case shapeCond:
		return "a conditional group"
	default:
		return "an opaque construct"
	}
}

func shortPos(p *Package, pos token.Pos) string {
	pp := p.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(pp.Filename), pp.Line)
}
