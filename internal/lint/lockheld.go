package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewLockHeldSend builds the lock-discipline analyzer: it flags channel
// sends, blocking receives, and blocking selects performed while a
// sync.Mutex or sync.RWMutex is held. In a bounded-channel engine this is
// the classic deadlock shape — the send backpressures, the lock never
// releases, and every goroutine needing the lock wedges behind it (cf.
// STRETCH's shared-window lock discipline). The scan is flow-sensitive
// within one function: branches are explored with a copy of the lock
// state, closures are analyzed independently with an empty state, and a
// deferred Unlock keeps the lock held to the end of the function.
func NewLockHeldSend() *Analyzer {
	a := &Analyzer{
		Name: "lockheld-send",
		Doc:  "flags channel sends and blocking receives while a sync.Mutex/RWMutex is held",
	}
	a.Run = func(p *Package) []Diagnostic {
		var diags []Diagnostic
		report := func(pos token.Pos, format string, args ...any) {
			diags = append(diags, a.Diag(p, pos, format, args...))
		}
		forEachFunc(p, func(body *ast.BlockStmt) {
			s := &lockScan{pkg: p, held: map[string]token.Pos{}, report: report}
			s.block(body)
		})
		return diags
	}
	return a
}

// forEachFunc visits the body of every function and function literal in
// the package, each exactly once.
func forEachFunc(p *Package, fn func(body *ast.BlockStmt)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n.Body)
				}
			case *ast.FuncLit:
				fn(n.Body)
			}
			return true
		})
	}
}

// lockScan walks one function body tracking which mutexes are held.
type lockScan struct {
	pkg    *Package
	held   map[string]token.Pos // lock expr → acquisition position
	report func(pos token.Pos, format string, args ...any)
}

// clone copies the scan state for a branch.
func (s *lockScan) clone() *lockScan {
	held := make(map[string]token.Pos, len(s.held))
	for k, v := range s.held {
		held[k] = v
	}
	return &lockScan{pkg: s.pkg, held: held, report: s.report}
}

// anyHeld returns the render of one held lock ("" when none).
func (s *lockScan) anyHeld() string {
	for k := range s.held {
		return k
	}
	return ""
}

// syncLockCall classifies a call as a sync Lock/Unlock method; it returns
// the rendered receiver and the method name, or ok=false.
func syncLockCall(p *Package, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj := p.Info.Uses[sel.Sel]
	fn, isFn := obj.(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

func (s *lockScan) block(b *ast.BlockStmt) {
	for _, st := range b.List {
		s.stmt(st)
	}
}

func (s *lockScan) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if recv, method, ok := syncLockCall(s.pkg, call); ok {
				switch method {
				case "Lock", "RLock":
					s.held[recv] = call.Pos()
				case "Unlock", "RUnlock":
					delete(s.held, recv)
				}
				return
			}
		}
		s.expr(st.X)
	case *ast.DeferStmt:
		if _, _, ok := syncLockCall(s.pkg, st.Call); ok {
			// defer x.Unlock() holds the lock to function end: the held
			// entry simply stays.
			return
		}
		for _, arg := range st.Call.Args {
			s.expr(arg)
		}
	case *ast.GoStmt:
		// The goroutine body runs later without our locks; arguments are
		// evaluated now.
		for _, arg := range st.Call.Args {
			s.expr(arg)
		}
	case *ast.SendStmt:
		if lock := s.anyHeld(); lock != "" {
			s.report(st.Arrow, "channel send while %s is held can deadlock the engine; release the lock first", lock)
		}
		s.expr(st.Chan)
		s.expr(st.Value)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.expr(e)
		}
		for _, e := range st.Lhs {
			s.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.expr(e)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.expr(st.Cond)
		s.clone().block(st.Body)
		if st.Else != nil {
			s.clone().stmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Cond != nil {
			s.expr(st.Cond)
		}
		s.clone().block(st.Body)
	case *ast.RangeStmt:
		s.expr(st.X)
		if lock := s.anyHeld(); lock != "" {
			if t := s.pkg.Info.Types[st.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					s.report(st.For, "range over channel while %s is held blocks between receives; release the lock first", lock)
				}
			}
		}
		s.clone().block(st.Body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Tag != nil {
			s.expr(st.Tag)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				br := s.clone()
				for _, b := range cc.Body {
					br.stmt(b)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				br := s.clone()
				for _, b := range cc.Body {
					br.stmt(b)
				}
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if lock := s.anyHeld(); lock != "" && !hasDefault {
			s.report(st.Select, "select with no default blocks while %s is held; release the lock first", lock)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				br := s.clone()
				for _, b := range cc.Body {
					br.stmt(b)
				}
			}
		}
	case *ast.BlockStmt:
		s.block(st)
	case *ast.LabeledStmt:
		s.stmt(st.Stmt)
	case *ast.IncDecStmt:
		s.expr(st.X)
	}
}

// expr flags blocking receives inside an expression while locked; nested
// function literals are opaque (they run with their own lock state).
func (s *lockScan) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if lock := s.anyHeld(); lock != "" {
					s.report(n.OpPos, "blocking channel receive while %s is held can deadlock the engine; release the lock first", lock)
				}
			}
		}
		return true
	})
}
