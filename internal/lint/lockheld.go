package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// NewLockHeldSend builds the lock-discipline analyzer: it flags channel
// sends, blocking receives, blocking selects — and, interprocedurally,
// calls to functions whose BlockSummary says they may block — performed
// while a sync.Mutex or sync.RWMutex is held. In a bounded-channel engine
// this is the classic deadlock shape: the send backpressures, the lock
// never releases, and every goroutine needing the lock wedges behind it
// (cf. STRETCH's shared-window lock discipline).
//
// The scan is flow-sensitive within one function body. Branches are
// explored independently and their exit states joined may-held (a lock
// held on any fall-through path stays tracked), with two precision rules
// the naive clone-and-discard scheme gets wrong:
//
//   - a branch that terminates (return / panic / goto) contributes nothing
//     to the post-branch state, so `if cond { mu.Unlock(); return }` does
//     not leak a phantom release — and `mu.Lock(); if c { mu.Unlock() };
//     send` is still flagged because the else path falls through held;
//   - locks acquired or released inside a branch propagate to the join,
//     so a release on every fall-through path really ends the held region
//     (no over-extension) and an acquire inside a branch extends it (no
//     under-extension).
//
// defer mu.Unlock() keeps the lock held to the end of the enclosing body,
// including past early returns in later branches. A deferred call that may
// block is flagged when a deferred unlock is already pending: deferred
// calls run LIFO, so the blocker would run before the unlock.
//
// Function literals are analyzed independently with an empty lock state
// (they run on their own schedule); calls with no static callee are
// treated as non-blocking (bounded analysis).
func NewLockHeldSend() *Analyzer {
	a := &Analyzer{
		Name: "lockheld-send",
		Doc:  "flags channel ops and calls to may-block functions while a sync.Mutex/RWMutex is held",
	}
	a.RunModule = func(m *Module) []Diagnostic {
		g := m.Graph()
		sums := m.BlockSummaries()
		var diags []Diagnostic
		for _, n := range g.Nodes {
			s := &lockScan{
				node:  n,
				pkg:   n.Pkg,
				graph: g,
				sums:  sums,
				held:  map[string]token.Pos{},
				defUn: map[string]bool{},
				report: func(pos token.Pos, chain []string, format string, args ...any) {
					d := a.Diag(n.Pkg, pos, format, args...)
					d.Chain = chain
					diags = append(diags, d)
				},
			}
			s.block(n.Body)
		}
		return diags
	}
	return a
}

// lockScan walks one function body tracking which mutexes are held.
type lockScan struct {
	node   *CGNode
	pkg    *Package
	graph  *CallGraph
	sums   map[*CGNode]*BlockSummary
	held   map[string]token.Pos // lock expr → acquisition position
	defUn  map[string]bool      // locks with a pending deferred unlock
	report func(pos token.Pos, chain []string, format string, args ...any)
}

// clone copies the scan state for a branch.
func (s *lockScan) clone() *lockScan {
	held := make(map[string]token.Pos, len(s.held))
	for k, v := range s.held {
		held[k] = v
	}
	defUn := make(map[string]bool, len(s.defUn))
	for k := range s.defUn {
		defUn[k] = true
	}
	return &lockScan{
		node: s.node, pkg: s.pkg, graph: s.graph, sums: s.sums,
		held: held, defUn: defUn, report: s.report,
	}
}

// join merges the exit states of the branches that fall through: a lock is
// held after the branch point when any fall-through path holds it
// (may-held — the analyzer reports possible deadlocks).
func (s *lockScan) join(exits []*lockScan) {
	held := map[string]token.Pos{}
	defUn := map[string]bool{}
	for _, e := range exits {
		for k, v := range e.held {
			if _, ok := held[k]; !ok {
				held[k] = v
			}
		}
		for k := range e.defUn {
			defUn[k] = true
		}
	}
	s.held = held
	s.defUn = defUn
}

// anyHeld returns the render of one held lock ("" when none); ties break
// lexicographically so messages are deterministic.
func (s *lockScan) anyHeld() string {
	if len(s.held) == 0 {
		return ""
	}
	keys := make([]string, 0, len(s.held))
	for k := range s.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys[0]
}

// syncLockCall classifies a call as a sync Lock/Unlock method; it returns
// the rendered receiver and the method name, or ok=false. RLock/RUnlock
// (sync.RWMutex read locks) count: a read-locked send still deadlocks
// against any writer waiting behind it.
func syncLockCall(p *Package, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj := p.Info.Uses[sel.Sel]
	fn, isFn := obj.(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// block scans a statement list; it reports whether control cannot fall out
// of the end (the list terminates in return/panic/goto).
func (s *lockScan) block(b *ast.BlockStmt) bool {
	for _, st := range b.List {
		if s.stmt(st) {
			return true
		}
	}
	return false
}

// isPanicCall reports whether e is a call to the panic builtin.
func isPanicCall(p *Package, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "panic"
}

// stmt scans one statement; the return value reports termination (control
// cannot reach the next statement).
func (s *lockScan) stmt(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if recv, method, ok := syncLockCall(s.pkg, call); ok {
				switch method {
				case "Lock", "RLock":
					s.held[recv] = call.Pos()
				case "Unlock", "RUnlock":
					delete(s.held, recv)
					delete(s.defUn, recv)
				}
				return false
			}
		}
		s.expr(st.X)
		return isPanicCall(s.pkg, st.X)
	case *ast.DeferStmt:
		if recv, method, ok := syncLockCall(s.pkg, st.Call); ok {
			if method == "Unlock" || method == "RUnlock" {
				// defer x.Unlock() holds the lock to the end of the
				// function: the held entry stays, and later deferred
				// blocking calls are now dangerous (LIFO order).
				s.defUn[recv] = true
			}
			return false
		}
		for _, arg := range st.Call.Args {
			s.expr(arg)
		}
		if len(s.defUn) > 0 {
			if callee, _ := s.graph.resolveCall(s.pkg, st.Call); callee != nil {
				if sum := s.sums[callee]; sum != nil && sum.Blocks {
					chain, desc, site := BlockChain(callee, s.sums)
					s.report(st.Call.Pos(), chain,
						"deferred call to %s runs before the deferred %s.Unlock and may block (%s; %s at %s); unlock explicitly before deferring it",
						callee.DisplayName(), s.anyDeferred(), strings.Join(chain, " → "), desc, chainSite(site))
				}
			}
		}
		return false
	case *ast.GoStmt:
		// The goroutine body runs later without our locks; arguments are
		// evaluated now.
		for _, arg := range st.Call.Args {
			s.expr(arg)
		}
		return false
	case *ast.SendStmt:
		if lock := s.anyHeld(); lock != "" {
			s.report(st.Arrow, nil, "channel send while %s is held can deadlock the engine; release the lock first", lock)
		}
		s.expr(st.Chan)
		s.expr(st.Value)
		return false
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			s.expr(e)
		}
		for _, e := range st.Lhs {
			s.expr(e)
		}
		return false
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v)
					}
				}
			}
		}
		return false
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.expr(e)
		}
		return true
	case *ast.BranchStmt:
		// break/continue leave the enclosing construct with the current
		// state; treating them as non-terminating keeps their exit state
		// in the may-held join. goto is treated as terminating.
		return st.Tok == token.GOTO
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.expr(st.Cond)
		then := s.clone()
		thenTerm := then.block(st.Body)
		var exits []*lockScan
		if !thenTerm {
			exits = append(exits, then)
		}
		if st.Else != nil {
			els := s.clone()
			elseTerm := els.stmt(st.Else)
			if !elseTerm {
				exits = append(exits, els)
			}
			if thenTerm && elseTerm {
				return true
			}
		} else {
			exits = append(exits, s.clone()) // condition false: state unchanged
		}
		s.join(exits)
		return false
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Cond != nil {
			s.expr(st.Cond)
		}
		body := s.clone()
		bodyTerm := body.block(st.Body)
		exits := []*lockScan{s.clone()} // zero iterations
		if !bodyTerm {
			exits = append(exits, body)
		}
		s.join(exits)
		return false
	case *ast.RangeStmt:
		s.expr(st.X)
		if lock := s.anyHeld(); lock != "" {
			if t := s.pkg.Info.Types[st.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					s.report(st.For, nil, "range over channel while %s is held blocks between receives; release the lock first", lock)
				}
			}
		}
		body := s.clone()
		bodyTerm := body.block(st.Body)
		exits := []*lockScan{s.clone()}
		if !bodyTerm {
			exits = append(exits, body)
		}
		s.join(exits)
		return false
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Tag != nil {
			s.expr(st.Tag)
		}
		return s.caseBodies(st.Body, hasDefaultCase(st.Body))
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		return s.caseBodies(st.Body, hasDefaultCase(st.Body))
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if lock := s.anyHeld(); lock != "" && !hasDefault {
			s.report(st.Select, nil, "select with no default blocks while %s is held; release the lock first", lock)
		}
		var exits []*lockScan
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				br := s.clone()
				term := false
				for _, b := range cc.Body {
					if term = br.stmt(b); term {
						break
					}
				}
				if !term {
					exits = append(exits, br)
				}
			}
		}
		if len(exits) == 0 && len(st.Body.List) > 0 {
			return true
		}
		s.join(exits)
		return false
	case *ast.BlockStmt:
		return s.block(st)
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt)
	case *ast.IncDecStmt:
		s.expr(st.X)
		return false
	}
	return false
}

// caseBodies explores switch clauses with cloned states and joins the
// fall-out states; without a default clause the pre-switch state also
// falls through.
func (s *lockScan) caseBodies(body *ast.BlockStmt, hasDefault bool) bool {
	var exits []*lockScan
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		br := s.clone()
		for _, e := range cc.List {
			br.expr(e)
		}
		term := false
		for _, b := range cc.Body {
			if term = br.stmt(b); term {
				break
			}
		}
		if !term {
			exits = append(exits, br)
		}
	}
	if !hasDefault {
		exits = append(exits, s.clone())
	}
	if len(exits) == 0 {
		return true
	}
	s.join(exits)
	return false
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// anyDeferred returns one lock with a pending deferred unlock
// (deterministic).
func (s *lockScan) anyDeferred() string {
	keys := make([]string, 0, len(s.defUn))
	for k := range s.defUn {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return ""
	}
	return keys[0]
}

// expr flags blocking receives — and calls to may-block functions — inside
// an expression while locked; nested function literals are opaque (they
// run with their own lock state).
func (s *lockScan) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if lock := s.anyHeld(); lock != "" {
					s.report(n.OpPos, nil, "blocking channel receive while %s is held can deadlock the engine; release the lock first", lock)
				}
			}
		case *ast.CallExpr:
			s.checkCall(n)
		}
		return true
	})
}

// checkCall consults the callee's blocking summary: a call that may block
// while a lock is held is the interprocedural form of the lock-held send,
// reported with the full witness call chain.
func (s *lockScan) checkCall(call *ast.CallExpr) {
	lock := s.anyHeld()
	if lock == "" {
		return
	}
	if _, _, isSync := syncLockCall(s.pkg, call); isSync {
		return
	}
	callee, _ := s.graph.resolveCall(s.pkg, call)
	if callee == nil {
		return // unknown or external callee: bounded, no finding
	}
	sum := s.sums[callee]
	if sum == nil || !sum.Blocks {
		return
	}
	chain, desc, site := BlockChain(callee, s.sums)
	s.report(call.Pos(), chain,
		"call to %s while %s is held may block (%s; %s at %s) and can deadlock the engine; release the lock first",
		callee.DisplayName(), lock, strings.Join(chain, " → "), desc, chainSite(site))
}

// forEachFunc visits the body of every function and function literal in
// the package, each exactly once (used by the per-package analyzers).
func forEachFunc(p *Package, fn func(body *ast.BlockStmt)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n.Body)
				}
			case *ast.FuncLit:
				fn(n.Body)
			}
			return true
		})
	}
}
