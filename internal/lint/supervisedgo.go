package lint

import (
	"go/ast"
	"strings"
)

// NewSupervisedGo builds the goroutine-supervision analyzer. The robustness
// contract says no operator goroutine may kill the process: every goroutine
// spawned inside the runtime packages must enter through a panic-capturing
// supervisor, which converts panics into structured InstanceFailures the
// coordinator can recover from. The analyzer enforces the naming seam of
// that contract in the packages in scope (exact path or "prefix/..."
// pattern; empty scope = every package): a `go` statement must either spawn
// a function whose name contains "supervised" (case-insensitive), or spawn
// a function literal that calls one. Anything else is an unsupervised
// goroutine and is flagged; deliberate exceptions carry //lint:ignore with
// a reason.
func NewSupervisedGo(scope []string) *Analyzer {
	a := &Analyzer{
		Name: "supervised-go",
		Doc:  "flags go statements in runtime packages that bypass the panic-capturing supervisor",
	}
	a.Run = func(p *Package) []Diagnostic {
		if len(scope) > 0 && !pathMatches(p.Path, scope) {
			return nil
		}
		var diags []Diagnostic
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if supervisedSpawn(g.Call) {
					return true
				}
				diags = append(diags, a.Diag(p, g.Go,
					"goroutine launched outside the supervisor: spawn a *supervised* entry point (or wrap the body in one) so a panic becomes an InstanceFailure instead of killing the process"))
				return true
			})
		}
		return diags
	}
	return a
}

// supervisedSpawn reports whether the spawned call enters a supervisor:
// either the callee's own name says so, or the spawned literal hands
// control to such a function somewhere in its body.
func supervisedSpawn(call *ast.CallExpr) bool {
	if isSupervisedName(call.Fun) {
		return true
	}
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if inner, ok := n.(*ast.CallExpr); ok && isSupervisedName(inner.Fun) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isSupervisedName reports whether the callee expression names a function
// containing "supervised" (case-insensitive), unwrapping selectors.
func isSupervisedName(fun ast.Expr) bool {
	var name string
	switch f := fun.(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), "supervised")
}
