package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The source importer type-checks stdlib packages from GOROOT sources and
// caches them per loader, so every test shares one loader.
var (
	loaderOnce sync.Once
	sharedLdr  *Loader
)

func testLoader() *Loader {
	loaderOnce.Do(func() { sharedLdr = NewLoader() })
	return sharedLdr
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	p, err := testLoader().LoadDir(dir, "fixture/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return p
}

// want is one expected diagnostic, parsed from a fixture comment of the
// form `// want "regex"` (or the block form `/* want "regex" */` where a
// line comment would collide with a lint directive). The diagnostic must
// land on the comment's exact file and line and match the regex.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var quotedRe = regexp.MustCompile(`"([^"]*)"`)

func collectWants(t *testing.T, p *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				ms := quotedRe.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted regex", pos.Filename, pos.Line)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regex %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// checkFixture runs the analyzers over one fixture package and asserts an
// exact one-to-one match between diagnostics and want comments: every
// diagnostic must hit a want at its precise file:line, and every want must
// be hit.
func checkFixture(t *testing.T, fixture string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	p := loadFixture(t, fixture)
	wants := collectWants(t, p)
	diags := Run([]*Package{p}, analyzers)
	for _, d := range diags {
		hit := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
	return diags
}

func TestWallclockFixture(t *testing.T) {
	checkFixture(t, "wallclock", []*Analyzer{NewWallclock(nil)})
}

func TestLockHeldFixture(t *testing.T) {
	checkFixture(t, "lockheld", []*Analyzer{NewLockHeldSend()})
}

func TestMapOrderFixture(t *testing.T) {
	checkFixture(t, "maporder", []*Analyzer{NewMapOrder(nil)})
}

func TestLeakyGoFixture(t *testing.T) {
	checkFixture(t, "leakygo", []*Analyzer{NewLeakyGo()})
}

func TestNakedAtomicFixture(t *testing.T) {
	checkFixture(t, "nakedatomic", []*Analyzer{NewNakedAtomic()})
}

func TestSupervisedGoFixture(t *testing.T) {
	checkFixture(t, "supervisedgo", []*Analyzer{NewSupervisedGo(nil)})
}

// TestSupervisedGoScope verifies the path scoping: the same fixture is
// silent when the analyzer is scoped to other packages.
func TestSupervisedGoScope(t *testing.T) {
	p := loadFixture(t, "supervisedgo")
	diags := Run([]*Package{p}, []*Analyzer{NewSupervisedGo([]string{"mod/internal/spe"})})
	if len(diags) != 0 {
		t.Errorf("out-of-scope package produced %d diagnostics: %v", len(diags), diags)
	}
}

func TestSnapCoverFixture(t *testing.T) {
	checkFixture(t, "snapcover", []*Analyzer{NewSnapCover(nil)})
}

func TestErrSinkFixture(t *testing.T) {
	checkFixture(t, "errsink", []*Analyzer{NewErrSink(nil)})
}

func TestSnapSymmetryFixture(t *testing.T) {
	checkFixture(t, "snapsym", []*Analyzer{NewSnapSymmetry(nil)})
}

// TestStateScope verifies the state-integrity analyzers honor their
// package scope: pointed at other packages, each fixture is silent.
func TestStateScope(t *testing.T) {
	otherScope := []string{"mod/internal/other"}
	for fixture, mk := range map[string]func([]string) *Analyzer{
		"snapcover": NewSnapCover,
		"errsink":   NewErrSink,
		"snapsym":   NewSnapSymmetry,
	} {
		p := loadFixture(t, fixture)
		diags := Run([]*Package{p}, []*Analyzer{mk(otherScope)})
		if len(diags) != 0 {
			t.Errorf("%s: out-of-scope package produced %d diagnostics: %v", fixture, len(diags), diags)
		}
	}
}

// TestSuppressedReasons proves //lint:ignore justifications survive into
// the JSON schema: RunAll returns each silenced finding with its
// directive's reason, Run stays the unsuppressed projection, and
// SuppressedFindings carries the reason into the Report.
// The lifetime fixtures run under all three lifetime analyzers at once:
// each fixture asserts its own analyzer's findings and the absence of
// cross-findings from the other two (they share one dataflow run).
func lifetimeAnalyzers(scope []string) []*Analyzer {
	return []*Analyzer{NewPoolSafe(scope), NewAliasEscape(scope), NewScratchLocal(scope)}
}

func TestPoolSafeFixture(t *testing.T) {
	checkFixture(t, "poolsafe", lifetimeAnalyzers(nil))
}

func TestAliasEscapeFixture(t *testing.T) {
	checkFixture(t, "aliasescape", lifetimeAnalyzers(nil))
}

func TestScratchLocalFixture(t *testing.T) {
	checkFixture(t, "scratchlocal", lifetimeAnalyzers(nil))
}

// TestLifetimeScope verifies the lifetime analyzers honor their package
// scope: pointed at other packages, each fixture is silent.
func TestLifetimeScope(t *testing.T) {
	for _, fixture := range []string{"poolsafe", "aliasescape", "scratchlocal"} {
		p := loadFixture(t, fixture)
		diags := Run([]*Package{p}, lifetimeAnalyzers([]string{"mod/internal/other"}))
		if len(diags) != 0 {
			t.Errorf("%s: out-of-scope package produced %d diagnostics: %v", fixture, len(diags), diags)
		}
	}
}

func TestSuppressedReasons(t *testing.T) {
	p := loadFixture(t, "ignore")
	analyzers := []*Analyzer{NewWallclock(nil)}
	diags, sup := RunAll([]*Package{p}, analyzers)
	if len(sup) == 0 {
		t.Fatal("ignore fixture produced no suppressed findings")
	}
	for _, s := range sup {
		if s.Reason == "" {
			t.Errorf("suppressed finding without a reason: %s", s.Diagnostic)
		}
	}
	if plain := Run([]*Package{p}, analyzers); len(plain) != len(diags) {
		t.Errorf("Run returned %d diagnostics, RunAll %d", len(plain), len(diags))
	}
	fs := SuppressedFindings("", sup)
	r := Report{Version: ReportVersion, Findings: []Finding{}, Suppressed: fs}
	b, err := r.WriteJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"reason": "`+sup[0].Reason+`"`) {
		t.Errorf("JSON report does not carry the suppression reason:\n%s", b)
	}
}

// TestIgnoreFixture proves the //lint:ignore machinery end to end: the
// same-line, own-line, and "all" directives suppress their findings (no
// want comment, so any survivor fails as unexpected), a directive naming a
// different analyzer does not, and a reason-less directive is itself
// reported alongside the finding it failed to suppress.
func TestIgnoreFixture(t *testing.T) {
	diags := checkFixture(t, "ignore", []*Analyzer{NewWallclock(nil)})
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	if byAnalyzer["wallclock"] != 2 || byAnalyzer["lint"] != 1 {
		t.Errorf("diagnostic mix = %v, want 2 wallclock + 1 lint", byAnalyzer)
	}
}

// TestWallclockAllowlist verifies path patterns: an exact allowlist entry
// silences the analyzer for the whole package.
func TestWallclockAllowlist(t *testing.T) {
	p := loadFixture(t, "wallclock")
	diags := Run([]*Package{p}, []*Analyzer{NewWallclock([]string{"fixture/wallclock"})})
	if len(diags) != 0 {
		t.Errorf("allowlisted package produced %d diagnostics: %v", len(diags), diags)
	}
}

// TestModuleClean is the self-host gate: the repo's own sources must pass
// every analyzer — the same check cmd/astream-vet runs in CI.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide type-check is slow")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := testLoader().LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, d := range Run(pkgs, ModuleAnalyzers(modPath)) {
		t.Errorf("module not lint-clean: %s", d)
	}
}

// BenchmarkVetFullRepo measures the full analyzer suite over the whole
// module — the cost CI pays per run. The module load (parse + type-check)
// happens once outside the timed loop; each iteration rebuilds the call
// graph, summaries, and lifetime dataflow from scratch, which is what
// RunAll does for a fresh invocation.
func BenchmarkVetFullRepo(b *testing.B) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := testLoader().LoadModule(root)
	if err != nil {
		b.Fatalf("loading module: %v", err)
	}
	analyzers := ModuleAnalyzers(modPath)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags, _, _ := RunAllTimed(pkgs, analyzers)
		if len(diags) != 0 {
			b.Fatalf("module not lint-clean: %s", diags[0])
		}
	}
}
