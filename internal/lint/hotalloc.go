package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NewHotAlloc builds the hot-path allocation analyzer: every function
// reachable over static synchronous call edges from a //lint:hotpath root
// must contain no allocating construct. It is the compile-time complement
// to the runtime 0-allocs/op guard (TestKernelAllocs): the benchmark
// proves a particular execution allocation-free, the analyzer proves the
// whole statically reachable region is.
//
// Flagged constructs: make/new, slice and map composite literals,
// address-of composite literals, append (may grow its backing array),
// non-constant string concatenation, string<->[]byte/[]rune conversions,
// function literals and method values (closure allocation), go statements,
// and interface boxing at call sites (a non-pointer-shaped concrete
// argument passed to an interface parameter).
//
// Bounded exemptions, matching the engine's cold/warm-up path idiom:
//
//   - an if-body whose last statement is a call to panic is a cold error
//     path and is not scanned;
//   - calls with no static callee (interface methods, function values) do
//     not extend the hot region — dynamic dispatch bounds the analysis
//     exactly as it does for lockheld-send;
//   - value struct/array composite literals are not flagged (they live in
//     registers or on the stack);
//   - intentional warm-up allocations are suppressed inline with
//     //lint:ignore hotalloc <reason>, keeping them auditable.
func NewHotAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "forbids allocating constructs in functions reachable from //lint:hotpath roots",
	}
	a.RunModule = func(m *Module) []Diagnostic {
		g := m.Graph()

		// BFS from the hot roots over synchronous call edges, remembering
		// the discovery edge so each finding can cite its hot path. Roots
		// come from g.Nodes, and each node's Out edges are in source order,
		// so discovery (and therefore reported chains) is deterministic.
		parent := map[*CGNode]*CGEdge{}
		var queue []*CGNode
		for _, n := range g.Nodes {
			if n.Hot {
				parent[n] = nil
				queue = append(queue, n)
			}
		}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, e := range n.Out {
				if e.Kind == CallGo {
					continue // a new goroutine is not this hot path
				}
				if _, seen := parent[e.Callee]; seen {
					continue
				}
				parent[e.Callee] = e
				queue = append(queue, e.Callee)
			}
		}

		var diags []Diagnostic
		for _, n := range g.Nodes {
			if _, hot := parent[n]; !hot {
				continue
			}
			chain := hotChain(n, parent)
			scanAllocs(n, func(pos token.Pos, what string) {
				d := a.Diag(n.Pkg, pos, "%s in hot function %s (hot path: %s)",
					what, n.DisplayName(), strings.Join(chain, " → "))
				d.Chain = chain
				diags = append(diags, d)
			})
		}
		return diags
	}
	return a
}

// hotChain renders the discovery path from a hot root down to n,
// outermost first.
func hotChain(n *CGNode, parent map[*CGNode]*CGEdge) []string {
	var rev []string
	for {
		rev = append(rev, n.DisplayName())
		e := parent[n]
		if e == nil {
			break
		}
		n = e.Caller
	}
	chain := make([]string, len(rev))
	for i, s := range rev {
		chain[len(rev)-1-i] = s
	}
	return chain
}

// scanAllocs reports every allocating construct in n's body (nested
// literals excluded — they are their own nodes, flagged at their creation
// site), skipping panic-terminated if-bodies (cold error paths).
func scanAllocs(n *CGNode, report func(pos token.Pos, what string)) {
	p := n.Pkg

	// Cold ranges: if-bodies whose last statement panics.
	var cold [][2]token.Pos
	walkOwn(n, func(node ast.Node) {
		ifs, ok := node.(*ast.IfStmt)
		if !ok || len(ifs.Body.List) == 0 {
			return
		}
		if es, ok := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ExprStmt); ok && isPanicCall(p, es.X) {
			cold = append(cold, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
		}
	})
	inCold := func(pos token.Pos) bool {
		for _, r := range cold {
			if pos >= r[0] && pos < r[1] {
				return true
			}
		}
		return false
	}

	// Method-value detection needs to know which selectors are call heads.
	callHeads := map[ast.Expr]bool{}
	// m[string(b)] is a compiler-recognized pattern that does not allocate
	// the string: collect conversions used directly as map-index keys.
	mapIndexConv := map[*ast.CallExpr]bool{}
	walkOwn(n, func(node ast.Node) {
		switch x := node.(type) {
		case *ast.CallExpr:
			callHeads[unparen(x.Fun)] = true
		case *ast.IndexExpr:
			t := p.Info.Types[x.X].Type
			if t == nil {
				return
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return
			}
			if conv, ok := unparen(x.Index).(*ast.CallExpr); ok {
				if tv, ok := p.Info.Types[conv.Fun]; ok && tv.IsType() {
					mapIndexConv[conv] = true
				}
			}
		}
	})

	emit := func(pos token.Pos, what string) {
		if !inCold(pos) {
			report(pos, what)
		}
	}

	walkOwn(n, func(node ast.Node) {
		switch x := node.(type) {
		case *ast.FuncLit:
			if x != n.Lit {
				emit(x.Pos(), "function literal allocates a closure")
			}
		case *ast.GoStmt:
			emit(x.Pos(), "go statement allocates a goroutine")
		case *ast.CompositeLit:
			t := p.Info.Types[x].Type
			if t == nil {
				return
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				emit(x.Pos(), "slice literal allocates")
			case *types.Map:
				emit(x.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					emit(x.Pos(), "address-of composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if x.Op != token.ADD {
				return
			}
			tv := p.Info.Types[x]
			if tv.Value != nil {
				return // constant-folded
			}
			if t, ok := tv.Type.(*types.Basic); ok && t.Info()&types.IsString != 0 {
				emit(x.Pos(), "string concatenation allocates")
			}
		case *ast.SelectorExpr:
			if callHeads[x] {
				return
			}
			if sel := p.Info.Selections[x]; sel != nil && sel.Kind() == types.MethodVal {
				emit(x.Pos(), "method value allocates a closure")
			}
		case *ast.CallExpr:
			if mapIndexConv[x] {
				return
			}
			scanCall(p, x, emit)
		}
	})
}

// scanCall flags allocating calls: make/new builtins, append, allocating
// string conversions, and interface boxing of arguments.
func scanCall(p *Package, call *ast.CallExpr, emit func(pos token.Pos, what string)) {
	// Conversions: string <-> []byte/[]rune copy their operand.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			dst := tv.Type
			src := p.Info.Types[call.Args[0]].Type
			if src != nil && allocatingStringConv(dst, src) {
				if cv := p.Info.Types[call.Args[0]]; cv.Value == nil { // constant conversions are static
					emit(call.Pos(), "string conversion allocates")
				}
			}
		}
		return
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := p.Info.Uses[id].(*types.Builtin); isB {
			switch b.Name() {
			case "make":
				emit(call.Pos(), "make allocates")
			case "new":
				emit(call.Pos(), "new allocates")
			case "append":
				emit(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}

	// Interface boxing: a concrete, non-pointer-shaped, non-constant
	// argument passed to an interface parameter is heap-boxed at the call.
	sigT, ok := p.Info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sigT.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sigT.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sigT.Variadic() && call.Ellipsis == token.NoPos:
			if sl, isSl := params.At(params.Len() - 1).Type().(*types.Slice); isSl {
				pt = sl.Elem()
			}
		case params.Len() > 0:
			pt = params.At(params.Len() - 1).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if _, isTP := pt.(*types.TypeParam); isTP {
			continue // instantiation decides; bounded
		}
		at := p.Info.Types[arg]
		if at.Type == nil || at.IsNil() || at.Value != nil {
			continue // nil and constants convert without a runtime allocation
		}
		if types.IsInterface(at.Type) {
			continue // interface-to-interface conversions don't box
		}
		if _, isTP := at.Type.(*types.TypeParam); isTP {
			continue
		}
		if pointerShaped(at.Type) {
			continue // stored directly in the interface word
		}
		emit(arg.Pos(), "interface boxing of "+at.Type.String()+" allocates")
	}
}

// allocatingStringConv reports whether a conversion dst(src) copies its
// operand: string <-> []byte / []rune in either direction.
func allocatingStringConv(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether values of t fit directly in an interface
// data word without boxing.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// unparen strips parentheses from an expression.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
