package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"reflect"
	"strings"
	"testing"
)

// graphFor builds the call graph over one fixture package.
func graphFor(t *testing.T, fixture string) (*Package, *CallGraph) {
	t.Helper()
	p := loadFixture(t, fixture)
	return p, BuildCallGraph([]*Package{p})
}

func nodeByName(t *testing.T, g *CallGraph, display string) *CGNode {
	t.Helper()
	for _, n := range g.Nodes {
		if n.DisplayName() == display {
			return n
		}
	}
	t.Fatalf("no node named %s; have %v", display, nodeNames(g))
	return nil
}

func nodeNames(g *CallGraph) []string {
	out := make([]string, len(g.Nodes))
	for i, n := range g.Nodes {
		out[i] = n.Name
	}
	return out
}

// outEdges renders a node's outgoing edges as "callee/kind" strings in
// source order.
func outEdges(n *CGNode) []string {
	out := make([]string, len(n.Out))
	for i, e := range n.Out {
		kind := "sync"
		switch e.Kind {
		case CallGo:
			kind = "go"
		case CallDefer:
			kind = "defer"
		}
		out[i] = e.Callee.DisplayName() + "/" + kind
	}
	return out
}

func TestCallGraphConstruction(t *testing.T) {
	_, g := graphFor(t, "cgfix")

	root := nodeByName(t, g, "root")
	got := outEdges(root)
	want := []string{
		"(*box).bump/sync",
		"box.get/sync",
		"idf/sync",
		"root$1/sync",
		"leaf/go",
		"leaf/defer",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("root edges = %v, want %v", got, want)
	}
	if !root.CallsUnknown {
		t.Error("root calls a function value; CallsUnknown should be set")
	}

	// The immediately invoked literal is its own node with its own edge.
	lit := nodeByName(t, g, "root$1")
	if got := outEdges(lit); !reflect.DeepEqual(got, []string{"leaf/sync"}) {
		t.Errorf("root$1 edges = %v", got)
	}
	if lit.Lit == nil || lit.Fn != nil {
		t.Error("literal node should carry Lit and no Fn")
	}

	// Generic instantiation resolves to the origin's node.
	idf := nodeByName(t, g, "idf")
	if len(idf.In) != 1 || idf.In[0].Caller != root {
		t.Errorf("idf.In = %v, want one edge from root", len(idf.In))
	}

	// Interface dispatch is unknown, not an edge.
	dyn := nodeByName(t, g, "dyn")
	if len(dyn.Out) != 0 || !dyn.CallsUnknown {
		t.Errorf("dyn: Out=%d CallsUnknown=%v, want bounded unknown", len(dyn.Out), dyn.CallsUnknown)
	}

	// leaf's In edges are sorted by caller name then position:
	// root (go, defer) then root$1 (sync).
	leaf := nodeByName(t, g, "leaf")
	var callers []string
	for _, e := range leaf.In {
		callers = append(callers, e.Caller.DisplayName())
	}
	if !reflect.DeepEqual(callers, []string{"root", "root", "root$1"}) {
		t.Errorf("leaf callers = %v", callers)
	}
}

func TestCallGraphDeterminism(t *testing.T) {
	p := loadFixture(t, "cgfix")
	render := func(g *CallGraph) string {
		var b strings.Builder
		for _, n := range g.Nodes {
			fmt.Fprintf(&b, "%s hot=%v unknown=%v -> %v\n", n.Name, n.Hot, n.CallsUnknown, outEdges(n))
		}
		return b.String()
	}
	a := render(BuildCallGraph([]*Package{p}))
	for i := 0; i < 3; i++ {
		if b := render(BuildCallGraph([]*Package{p})); a != b {
			t.Fatalf("call graph not deterministic:\n%s\nvs\n%s", a, b)
		}
	}
}

func TestBlockSummaryPropagation(t *testing.T) {
	_, g := graphFor(t, "lockheldproc")
	sums := ComputeBlockSummaries(g)

	blocks := func(name string) *BlockSummary {
		t.Helper()
		return sums[nodeByName(t, g, name)]
	}

	if s := blocks("(*node).send"); !s.Blocks || s.Via != nil || s.Desc != "channel send" {
		t.Errorf("send summary = %+v, want direct channel send", s)
	}
	if s := blocks("(*node).forward"); !s.Blocks || s.Via == nil {
		t.Errorf("forward summary = %+v, want transitive block", s)
	}
	if s := blocks("(*node).forward2"); !s.Blocks || s.Via == nil {
		t.Errorf("forward2 summary = %+v, want transitive block", s)
	}
	if s := blocks("(*node).pump"); !s.Blocks {
		t.Error("recursive pump should block")
	}
	for _, clean := range []string{"(*node).trySend", "(*node).ping", "(*node).pong", "(*node).goodGoHelper", "(*node).goodFuncValue"} {
		if s := blocks(clean); s.Blocks {
			t.Errorf("%s should not block", clean)
		}
	}

	chain, desc, pos := BlockChain(nodeByName(t, g, "(*node).forward2"), sums)
	if want := []string{"(*node).forward2", "(*node).forward", "(*node).send"}; !reflect.DeepEqual(chain, want) {
		t.Errorf("forward2 chain = %v, want %v", chain, want)
	}
	if desc != "channel send" || pos.Line == 0 {
		t.Errorf("forward2 witness = %q at %v", desc, pos)
	}
}

func TestBlockSummaryDeterminism(t *testing.T) {
	p := loadFixture(t, "lockheldproc")
	render := func() string {
		g := BuildCallGraph([]*Package{p})
		sums := ComputeBlockSummaries(g)
		var b strings.Builder
		for _, n := range g.Nodes {
			s := sums[n]
			if !s.Blocks {
				continue
			}
			chain, desc, pos := BlockChain(n, sums)
			fmt.Fprintf(&b, "%s: %v %s %s\n", n.Name, chain, desc, chainSite(pos))
		}
		return b.String()
	}
	a := render()
	for i := 0; i < 3; i++ {
		if b := render(); a != b {
			t.Fatalf("summaries not deterministic:\n%s\nvs\n%s", a, b)
		}
	}
}

func TestHotAllocFixture(t *testing.T) {
	checkFixture(t, "hotalloc", []*Analyzer{NewHotAlloc()})
}

func TestLockHeldProcFixture(t *testing.T) {
	diags := checkFixture(t, "lockheldproc", []*Analyzer{NewLockHeldSend()})
	// The two-hop finding must carry the machine-readable chain.
	found := false
	for _, d := range diags {
		if len(d.Chain) == 3 {
			found = true
		}
	}
	if !found {
		t.Error("no diagnostic carried a three-element call chain")
	}
}

func TestFindingsJSONRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "hotalloc", Pos: token.Position{Filename: "/repo/internal/core/agg.go", Line: 10, Column: 3}, Message: "make allocates", Chain: []string{"a", "b"}},
		{Analyzer: "lockheld-send", Pos: token.Position{Filename: "/repo/internal/spe/runtime.go", Line: 4, Column: 1}, Message: "send under lock"},
	}
	r := NewReport("/repo", diags)
	if r.Findings[0].File != "internal/core/agg.go" {
		t.Errorf("path not relativized: %q", r.Findings[0].File)
	}
	b, err := r.WriteJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Errorf("round trip mismatch:\n%+v\nvs\n%+v", r, back)
	}
}

func TestBaselineSubtract(t *testing.T) {
	mk := func(file, msg string, line int) Finding {
		return Finding{Analyzer: "hotalloc", File: file, Line: line, Col: 1, Message: msg}
	}
	current := Report{Version: ReportVersion, Findings: []Finding{
		mk("a.go", "make allocates", 10),
		mk("a.go", "make allocates", 20), // duplicate message, second instance
		mk("b.go", "append may grow", 5),
	}}
	baseline := Report{Version: ReportVersion, Findings: []Finding{
		mk("a.go", "make allocates", 99), // line differs: still absorbs one
	}}
	fresh := current.Subtract(baseline)
	if len(fresh) != 2 {
		t.Fatalf("fresh = %d findings (%v), want 2", len(fresh), fresh)
	}
	if fresh[0].File != "a.go" || fresh[0].Line != 20 {
		t.Errorf("multiset matching should absorb only the first duplicate, got %+v", fresh[0])
	}
	if fresh[1].File != "b.go" {
		t.Errorf("unbaselined finding missing, got %+v", fresh[1])
	}

	// An empty baseline subtracts nothing; empty current yields empty
	// non-nil slice (marshals as []).
	if got := current.Subtract(Report{Version: ReportVersion}); len(got) != 3 {
		t.Errorf("empty baseline absorbed findings: %v", got)
	}
	if got := (Report{Version: ReportVersion}).Subtract(baseline); got == nil || len(got) != 0 {
		t.Errorf("empty current should give empty non-nil slice, got %#v", got)
	}
}
