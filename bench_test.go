// Benchmarks regenerating the paper's evaluation: one benchmark per figure
// (Figures 9–20) plus the ablation benchmarks DESIGN.md calls out. Each
// benchmark iteration runs a complete scaled-down experiment and reports the
// paper's metric as a custom benchmark metric, so
//
//	go test -bench=Fig -benchmem
//
// prints the reproduction's shape. cmd/astream-bench runs the same
// experiments with longer steady states and full grids.
package astream_test

import (
	"testing"
	"time"

	"astream"
	"astream/internal/experiments"
)

// benchScale keeps every iteration around half a second.
func benchScale() experiments.Scale {
	return experiments.Scale{Warmup: 150 * time.Millisecond, Measure: 350 * time.Millisecond}
}

func reportRun(b *testing.B, m experiments.Measurement) {
	b.ReportMetric(m.SlowestTupS, "slowest-tup/s")
	b.ReportMetric(m.OverallTupS, "overall-tup/s")
	b.ReportMetric(float64(m.EventTimeLat.Microseconds()), "latency-us")
	b.ReportMetric(float64(m.DeployMean.Microseconds()), "deploy-us")
}

func sc1Params(kind experiments.QueryKind, sys experiments.System, qps float64, qp int) experiments.Params {
	sc := benchScale()
	return experiments.Params{
		System: sys, Kind: kind, Nodes: 1, Scenario: "SC1",
		QueriesPerSec: qps, MaxParallelQ: qp,
		Warmup: sc.Warmup, Measure: sc.Measure, Seed: 1,
	}
}

// BenchmarkFig09SlowestThroughputSC1 reproduces Figure 9a: slowest data
// throughput under SC1 for AStream at growing query parallelism, against the
// single-query baseline.
func BenchmarkFig09SlowestThroughputSC1(b *testing.B) {
	cases := []struct {
		name string
		p    experiments.Params
	}{
		{"baseline/single", sc1Params(experiments.AggK, experiments.Baseline, 1, 1)},
		{"astream/single", sc1Params(experiments.AggK, experiments.AStream, 1, 1)},
		{"astream/10qs-60qp", sc1Params(experiments.AggK, experiments.AStream, 10, 60)},
		{"astream/100qs-1000qp", sc1Params(experiments.AggK, experiments.AStream, 100, 1000)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reportRun(b, experiments.Run(c.p))
			}
		})
	}
}

// BenchmarkFig09OverallThroughputSC1 reproduces Figure 9b: overall (query-
// serving) throughput rises with parallelism under sharing.
func BenchmarkFig09OverallThroughputSC1(b *testing.B) {
	for _, qp := range []int{1, 20, 60, 200} {
		p := sc1Params(experiments.JoinK, experiments.AStream, 100, qp)
		b.Run(p.Label(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reportRun(b, experiments.Run(p))
			}
		})
	}
}

// BenchmarkFig10DeploymentTimeline reproduces Figure 10: per-query
// deployment latency, AStream flat vs baseline growing.
func BenchmarkFig10DeploymentTimeline(b *testing.B) {
	for _, sys := range []experiments.System{experiments.AStream, experiments.Baseline} {
		b.Run(sys.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts := experiments.Fig10DeployTimeline(sys, 10, benchScale())
				last := pts[len(pts)-1].Latency
				first := pts[0].Latency
				b.ReportMetric(float64(first.Microseconds()), "first-deploy-us")
				b.ReportMetric(float64(last.Microseconds()), "last-deploy-us")
			}
		})
	}
}

// BenchmarkFig11DeploymentLatencySC1 reproduces Figure 11 (deployment
// latencies across the SC1 grid).
func BenchmarkFig11DeploymentLatencySC1(b *testing.B) {
	p := sc1Params(experiments.JoinK, experiments.AStream, 100, 100)
	for i := 0; i < b.N; i++ {
		m := experiments.Run(p)
		b.ReportMetric(float64(m.DeployMean.Microseconds()), "deploy-mean-us")
		b.ReportMetric(float64(m.DeployMax.Microseconds()), "deploy-max-us")
	}
}

// BenchmarkFig12EventTimeLatencySC1 reproduces Figure 12.
func BenchmarkFig12EventTimeLatencySC1(b *testing.B) {
	for _, kind := range []experiments.QueryKind{experiments.JoinK, experiments.AggK} {
		b.Run(kind.String(), func(b *testing.B) {
			p := sc1Params(kind, experiments.AStream, 100, 60)
			for i := 0; i < b.N; i++ {
				m := experiments.Run(p)
				b.ReportMetric(float64(m.EventTimeLat.Microseconds()), "latency-us")
				b.ReportMetric(float64(m.EventTimeP95.Microseconds()), "latency-p95-us")
			}
		})
	}
}

func sc2Params(kind experiments.QueryKind, n int) experiments.Params {
	sc := benchScale()
	return experiments.Params{
		System: experiments.AStream, Kind: kind, Nodes: 1, Scenario: "SC2",
		BatchN: n, BatchEvery: 10 * time.Second,
		Warmup: sc.Warmup, Measure: sc.Measure, Seed: 2,
	}
}

// BenchmarkFig13EventTimeLatencySC2 reproduces Figure 13.
func BenchmarkFig13EventTimeLatencySC2(b *testing.B) {
	for _, n := range []int{10, 30, 50} {
		p := sc2Params(experiments.AggK, n)
		b.Run(p.Label(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := experiments.Run(p)
				b.ReportMetric(float64(m.EventTimeLat.Microseconds()), "latency-us")
			}
		})
	}
}

// BenchmarkFig14ThroughputSC2 reproduces Figure 14 (slowest and overall
// throughput under churn).
func BenchmarkFig14ThroughputSC2(b *testing.B) {
	for _, n := range []int{10, 30, 50} {
		p := sc2Params(experiments.JoinK, n)
		b.Run(p.Label(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reportRun(b, experiments.Run(p))
			}
		})
	}
}

// BenchmarkFig15DeploymentLatencySC2 reproduces Figure 15.
func BenchmarkFig15DeploymentLatencySC2(b *testing.B) {
	p := sc2Params(experiments.JoinK, 30)
	for i := 0; i < b.N; i++ {
		m := experiments.Run(p)
		b.ReportMetric(float64(m.DeployMean.Microseconds()), "deploy-mean-us")
	}
}

// BenchmarkFig16ComplexTimeline reproduces Figure 16: complex queries under
// churn; reports the final phase's throughput and query count.
func BenchmarkFig16ComplexTimeline(b *testing.B) {
	sc := experiments.Scale{Warmup: 50 * time.Millisecond, Measure: 120 * time.Millisecond}
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig16Timeline(sc)
		last := pts[len(pts)-1]
		b.ReportMetric(last.Throughput, "final-tup/s")
		b.ReportMetric(float64(last.Queries), "final-queries")
	}
}

// BenchmarkFig17ParallelismSweep reproduces Figure 17: slowest throughput as
// query parallelism grows (log steps).
func BenchmarkFig17ParallelismSweep(b *testing.B) {
	for _, qp := range []int{1, 16, 256} {
		p := sc1Params(experiments.JoinK, experiments.AStream, 100, qp)
		b.Run(p.Label(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := experiments.Run(p)
				b.ReportMetric(m.SlowestTupS, "slowest-tup/s")
			}
		})
	}
}

// BenchmarkFig18ComponentOverhead reproduces Figure 18a: the share of each
// sharing component.
func BenchmarkFig18ComponentOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		shares := experiments.Fig18ComponentOverhead(benchScale(), []int{64})
		s := shares[0]
		b.ReportMetric(100*s.QuerySetGen, "qsgen-%")
		b.ReportMetric(100*s.Bitset, "bitset-%")
		b.ReportMetric(100*s.RouterC, "router-%")
		b.ReportMetric(100*s.TotalShare, "total-%")
	}
}

// BenchmarkFig18SharingOverhead reproduces Figure 18b: single-query overhead
// of the sharing machinery.
func BenchmarkFig18SharingOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, base, ov := experiments.Fig18bSingleQueryOverhead(benchScale(), experiments.AggK)
		b.ReportMetric(a.SlowestTupS, "astream-tup/s")
		b.ReportMetric(base.SlowestTupS, "baseline-tup/s")
		b.ReportMetric(100*ov, "overhead-%")
	}
}

// BenchmarkFig19AdhocImpact reproduces Figure 19: throughput before/after an
// ad-hoc query wave.
func BenchmarkFig19AdhocImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig19Impact(benchScale(), "SC1", []int{10}, []int{20})
		b.ReportMetric(pts[0].BeforeTupS, "before-tup/s")
		b.ReportMetric(pts[0].AfterTupS, "after-tup/s")
	}
}

// BenchmarkFig20Scalability reproduces Figure 20: sustainable ad-hoc query
// count per node count at a fixed offered rate.
func BenchmarkFig20Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig20Scalability(benchScale(), "SC1", []int{1, 2}, []int{25, 50, 100, 200}, 10000)
		b.ReportMetric(float64(pts[0].Sustained), "1node-queries")
		b.ReportMetric(float64(pts[len(pts)-1].Sustained), "2node-queries")
	}
}

// --- ablation benchmarks (DESIGN.md §5) -------------------------------------

// BenchmarkAblationNoSlicing contrasts shared execution with the paper's
// alternative of evaluating every query separately: AStream with N queries
// vs the baseline with N queries (which IS per-query evaluation).
func BenchmarkAblationNoSlicing(b *testing.B) {
	for _, sys := range []experiments.System{experiments.AStream, experiments.Baseline} {
		b.Run(sys.String(), func(b *testing.B) {
			p := sc1Params(experiments.AggK, sys, 100, 6)
			for i := 0; i < b.N; i++ {
				m := experiments.Run(p)
				b.ReportMetric(m.OverallTupS, "overall-tup/s")
			}
		})
	}
}

// BenchmarkAblationRouterCopy measures the router's per-query data copy by
// comparing result fan-out at different query counts over the same input.
func BenchmarkAblationRouterCopy(b *testing.B) {
	for _, qp := range []int{1, 32} {
		p := sc1Params(experiments.AggK, experiments.AStream, 100, qp)
		b.Run(p.Label(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := experiments.Run(p)
				b.ReportMetric(m.ResultsPerSec, "results/s")
			}
		})
	}
}

// BenchmarkEngineIngest measures the raw shared-pipeline ingest path (no
// experiment scaffolding): one aggregation query, direct Ingest calls.
func BenchmarkEngineIngest(b *testing.B) {
	eng, err := astream.New(astream.Config{Streams: 1, Parallelism: 2, BatchSize: 1})
	if err != nil {
		b.Fatal(err)
	}
	q := astream.NewAggregation(astream.Tumbling(1000), astream.AggSum, 0, astream.True())
	_, ack, err := eng.Submit(q, astream.SinkFunc(func(astream.Result) {}))
	if err != nil {
		b.Fatal(err)
	}
	<-ack
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := astream.Tuple{Key: int64(i % 1000), Time: astream.Time(i)}
		t.Fields[0] = int64(i)
		if err := eng.Ingest(0, t); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	eng.Drain()
}
