// Package astream is an ad-hoc shared stream processing engine — a from-
// scratch Go reproduction of "AStream: Ad-hoc Shared Stream Processing"
// (Karimov, Rabl, Markl; SIGMOD 2019).
//
// AStream executes many concurrently running, ad-hoc created and deleted
// stream queries on one deployed topology, sharing selection work, window
// slices, join computation, and aggregation state across them. Queries are
// identified by bits in per-tuple query-sets; workload changes travel
// through the streams as changelog markers, so every operator — and every
// replay — sees the same consistent, event-time-anchored query lifecycle.
//
// # Quick start
//
//	eng, err := astream.New(astream.Config{Streams: 2, Parallelism: 4})
//	...
//	id, ack, err := eng.SubmitSQL(
//	    `SELECT * FROM A, B [RANGE 2000] [SLIDE 500]
//	     WHERE A.KEY = B.KEY AND A.F0 > 10`,
//	    astream.SinkFunc(func(r astream.Result) { fmt.Println(r) }))
//	<-ack // query is live
//	eng.Ingest(0, astream.Tuple{Key: 7, Time: 1200})
//	...
//	eng.StopQuery(id) // ad-hoc deletion, no topology change
//	eng.Drain()
//
// Queries can be submitted as SQL (the paper's templates: windowed joins,
// windowed aggregations, selections, and join+aggregation pipelines) or as
// compiled Query values. Every query gets its own result sink; one input
// stream serves all of them.
//
// The library also ships the paper's evaluation apparatus: a query-at-a-time
// baseline engine (internal/baseline), the workload generators (§4.2), the
// driver of Figure 5, and a benchmark harness reproducing Figures 9–20 (see
// cmd/astream-bench and bench_test.go).
package astream

import (
	"astream/internal/baseline"
	"astream/internal/core"
	"astream/internal/event"
	"astream/internal/expr"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

// Tuple is one stream record: a partitioning key, NumFields integer payload
// fields, and an event-time in milliseconds.
type Tuple = event.Tuple

// NumFields is the number of payload fields per tuple.
const NumFields = event.NumFields

// Time is an event-time instant (milliseconds since the stream epoch).
type Time = event.Time

// Config parameterizes an engine; zero values get sensible defaults
// (1 stream, parallelism 1, changelog batch 100 / 1 s, watermark every 10
// time units).
type Config = core.Config

// Engine is the shared ad-hoc streaming engine.
type Engine = core.Engine

// Query is a compiled query; build one with the helpers below or via SQL.
type Query = core.Query

// Result is one query-addressed output row.
type Result = core.Result

// Sink consumes one query's results; implementations must be safe for
// concurrent use.
type Sink = core.Sink

// SinkFunc adapts a function to a Sink.
type SinkFunc = core.SinkFunc

// CountingSink counts results and samples end-to-end latency.
type CountingSink = core.CountingSink

// DeployRecord reports one query's deployment latency.
type DeployRecord = core.DeployRecord

// Predicate is a conjunction of field comparisons.
type Predicate = expr.Predicate

// Comparison is a single field-vs-constant comparison.
type Comparison = expr.Comparison

// WindowSpec describes a tumbling, sliding, or session window.
type WindowSpec = window.Spec

// Kind classifies queries (selection / join / aggregation / complex).
type Kind = core.Kind

// Query kinds.
const (
	KindSelection   = core.KindSelection
	KindJoin        = core.KindJoin
	KindAggregation = core.KindAggregation
	KindComplex     = core.KindComplex
)

// AggFunc is an aggregate function (SUM, COUNT, AVG, MIN, MAX).
type AggFunc = sqlstream.AggFunc

// Aggregate functions.
const (
	AggSum   = sqlstream.AggSum
	AggCount = sqlstream.AggCount
	AggAvg   = sqlstream.AggAvg
	AggMin   = sqlstream.AggMin
	AggMax   = sqlstream.AggMax
)

// New builds and deploys a shared engine.
func New(cfg Config) (*Engine, error) { return core.NewEngine(cfg) }

// ParseQuery parses one of the paper's SQL templates and compiles it.
// Stream names bind positionally: the first FROM source is stream 0.
func ParseQuery(sql string) (*Query, error) {
	sq, err := sqlstream.Parse(sql)
	if err != nil {
		return nil, err
	}
	return core.CompileSQL(sq)
}

// Tumbling returns a tumbling window of the given length.
func Tumbling(length Time) WindowSpec { return window.TumblingSpec(length) }

// Sliding returns a sliding window.
func Sliding(length, slide Time) WindowSpec { return window.SlidingSpec(length, slide) }

// Session returns a session window with the given inactivity gap.
func Session(gap Time) WindowSpec { return window.SessionSpec(gap) }

// True is the always-true predicate.
func True() Predicate { return expr.True() }

// Field compares payload field i against a constant; op is one of
// "<", ">", "=", "<=", ">=", "!=".
func Field(i int, op string, value int64) (Comparison, error) {
	o, err := expr.ParseOp(op)
	if err != nil {
		return Comparison{}, err
	}
	c := Comparison{Field: i, Op: o, Value: value}
	return c, c.Validate()
}

// KeyEquals compares the tuple key against a constant.
func KeyEquals(value int64) Comparison {
	return Comparison{Field: expr.KeyField, Op: expr.EQ, Value: value}
}

// NewAggregation builds a windowed aggregation query over stream 0.
func NewAggregation(spec WindowSpec, fn AggFunc, field int, pred Predicate) *Query {
	return &Query{
		Kind: KindAggregation, Arity: 1,
		Predicates: []Predicate{pred},
		Window:     spec, Agg: fn, AggField: field,
	}
}

// NewJoin builds a windowed equi-join (on key) across the first
// len(preds) streams, with one predicate per stream.
func NewJoin(spec WindowSpec, preds ...Predicate) *Query {
	return &Query{
		Kind: KindJoin, Arity: len(preds),
		Predicates: preds, Window: spec, AggField: -1,
	}
}

// NewSelection builds a stateless filter query over stream 0.
func NewSelection(pred Predicate) *Query {
	return &Query{Kind: KindSelection, Arity: 1, Predicates: []Predicate{pred}, AggField: -1}
}

// NewComplex builds a join-then-aggregate pipeline (paper §4.7); both
// windows must be tumbling.
func NewComplex(joinSpec, aggSpec WindowSpec, fn AggFunc, field int, preds ...Predicate) *Query {
	return &Query{
		Kind: KindComplex, Arity: len(preds),
		Predicates: preds, Window: joinSpec, AggWindow: aggSpec,
		Agg: fn, AggField: field,
	}
}

// QoSReport is the engine's quality-of-service snapshot (paper §3.4):
// per-query result counts and latencies plus data-path counters. Obtain it
// with Engine.QoS().
type QoSReport = core.QoSReport

// QueryQoS is one query's service-level snapshot inside a QoSReport.
type QueryQoS = core.QueryQoS

// StoreMode selects the shared join's slice data structure (paper §3.1.4
// and §3.2.3): adaptive (default; switches between grouped and list via
// session markers at Config.GroupedThreshold), always-grouped, or
// always-list.
type StoreMode = core.StoreMode

// Store modes.
const (
	StoreAdaptive = core.StoreAdaptive
	StoreGrouped  = core.StoreGrouped
	StoreList     = core.StoreList
)

// BaselineConfig parameterizes the query-at-a-time comparison engine.
type BaselineConfig = baseline.Config

// BaselineEngine runs each query in its own topology over a forked input
// stream — the vanilla-SPE model the paper evaluates against. It exposes the
// same Submit/StopQuery/Ingest/Drain surface as Engine.
type BaselineEngine = baseline.Engine

// NewBaseline builds a query-at-a-time engine.
func NewBaseline(cfg BaselineConfig) (*BaselineEngine, error) {
	return baseline.NewEngine(cfg)
}
