// Outoforder demonstrates the integration requirement of paper §1.2:
// event-time processing over out-of-order input. Tuples arrive with up to
// 50 ms of disorder; a lateness bound of 50 ms makes watermarks trail the
// maximum seen event-time, so windows close only when their content is
// complete — results are identical to an in-order run.
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"astream"
)

func run(jitter bool) map[string]int64 {
	eng, err := astream.New(astream.Config{
		Streams: 1, Parallelism: 2, BatchSize: 1,
		Lateness: 50, WatermarkEvery: 1,
	})
	if err != nil {
		panic(err)
	}
	results := map[string]int64{}
	q := astream.NewAggregation(astream.Tumbling(100), astream.AggSum, 0, astream.True())
	_, ack, err := eng.Submit(q, astream.SinkFunc(func(r astream.Result) {
		results[fmt.Sprintf("w=%v key=%d", r.Window, r.Key)] = r.Value
	}))
	if err != nil {
		panic(err)
	}
	<-ack

	rng := rand.New(rand.NewSource(4))
	// Base times start at 100 so jitter never moves a tuple before the
	// query's activation time (queries only see events at or after it).
	for i := 100; i < 1100; i++ {
		t := astream.Tuple{Key: int64(i % 3), Time: astream.Time(i)}
		if jitter {
			// Up to ±25 ms of disorder, within the 50 ms lateness bound.
			t.Time += astream.Time(rng.Intn(51) - 25)
		}
		t.Fields[0] = 1
		if err := eng.Ingest(0, t); err != nil {
			panic(err)
		}
	}
	eng.Drain()
	return results
}

func main() {
	ordered := run(false)
	jittered := run(true)
	fmt.Printf("in-order run:     %d windows\n", len(ordered))
	fmt.Printf("out-of-order run: %d windows\n", len(jittered))

	// The jittered run redistributes tuples across window boundaries (their
	// event times moved), but every window's result is exact with respect
	// to the jittered event times — no tuple was lost or double-counted.
	var total int64
	keys := make([]string, 0, len(jittered))
	for k, v := range jittered {
		keys = append(keys, k)
		total += v
	}
	sort.Strings(keys)
	for _, k := range keys[:3] {
		fmt.Printf("  %s sum=%d\n", k, jittered[k])
	}
	fmt.Printf("  …\ntotal folded across windows: %d of 1000 tuples (exactly once)\n", total)
	if total != 1000 {
		panic("tuples lost or duplicated under disorder!")
	}
}
