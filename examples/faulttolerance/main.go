// Faulttolerance demonstrates the exactly-once story of paper §3.3: input
// (tuples AND query changelog events) is logged, checkpoints cut the log at
// barrier-aligned quiescent points, and a crash between checkpoints loses
// only uncommitted results — deterministic replay regenerates them, and
// committed epochs are never exposed twice.
package main

import (
	"fmt"

	"astream"
	"astream/internal/checkpoint"
	"astream/internal/core"
)

func main() {
	log := &checkpoint.Log{}
	sink := checkpoint.NewTxSink()
	runner, err := checkpoint.NewRunner(core.Config{Streams: 1, Parallelism: 2, WatermarkEvery: 1}, log, sink)
	if err != nil {
		panic(err)
	}

	q := astream.NewAggregation(astream.Tumbling(10), astream.AggSum, 0, astream.True())
	if err := runner.Submit(q); err != nil {
		panic(err)
	}

	ingest := func(from, to int) {
		for i := from; i <= to; i++ {
			t := astream.Tuple{Key: int64(i % 2), Time: astream.Time(i)}
			t.Fields[0] = 1
			if err := runner.Ingest(0, t); err != nil {
				panic(err)
			}
		}
	}

	ingest(1, 35)
	id, err := runner.Checkpoint()
	if err != nil {
		panic(err)
	}
	fmt.Printf("checkpoint %d: %d results committed, log at %d records\n",
		id, len(sink.Committed()), log.Len())

	ingest(36, 70)
	fmt.Printf("pre-crash: %d uncommitted results buffered\n", sink.PendingCount())

	// 💥 Crash: the process dies. The log and committed epochs survive;
	// buffered results are lost.
	committed := runner.Crash()
	manifest := runner.Manifest()
	fmt.Printf("CRASH — surviving state: %d committed epochs, %d log records\n",
		len(committed), log.Len())

	// Recovery: restore every operator from the snapshot store's latest
	// completed checkpoint and replay only the log suffix past it. Epochs
	// committed before the crash are deduplicated; the lost window results
	// are regenerated. (checkpoint.Recover would replay the whole log
	// instead — same output, cost proportional to job lifetime.)
	recovered, err := checkpoint.RecoverFromStore(
		core.Config{Streams: 1, Parallelism: 2, WatermarkEvery: 1},
		log, manifest, committed, runner.Store())
	if err != nil {
		panic(err)
	}
	final := recovered.FinishReplay()
	fmt.Printf("after recovery: %d results, exactly once\n", len(final))
	for _, r := range final {
		fmt.Println("  ", r)
	}
}
