// Faulttolerance demonstrates the exactly-once story of paper §3.3 twice
// over. Act 1 is the in-memory machinery: input (tuples AND query changelog
// events) is logged, checkpoints cut the log at barrier-aligned quiescent
// points, and a crash between checkpoints loses only uncommitted results —
// deterministic replay regenerates them, and committed epochs are never
// exposed twice. Act 2 moves the same guarantee across a process restart:
// the durable backend persists the log and snapshots under a state
// directory, the "process" dies (store closed, every in-memory structure
// dropped) with its final WAL append literally torn in half, and a fresh
// open rebuilds from the directory alone — truncating the torn frame,
// restoring the latest completed checkpoint, and replaying the surviving
// suffix.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"astream"
	"astream/internal/checkpoint"
	"astream/internal/core"
	"astream/internal/durable"
)

func query() *core.Query {
	return astream.NewAggregation(astream.Tumbling(10), astream.AggSum, 0, astream.True())
}

func tuple(i int) astream.Tuple {
	t := astream.Tuple{Key: int64(i % 2), Time: astream.Time(i)}
	t.Fields[0] = 1
	return t
}

func main() {
	inMemoryAct()
	durableAct()
}

// inMemoryAct: crash and recover inside one process.
func inMemoryAct() {
	fmt.Println("=== Act 1: crash and recover in-process ===")
	log := &checkpoint.Log{}
	sink := checkpoint.NewTxSink()
	runner, err := checkpoint.NewRunner(core.Config{Streams: 1, Parallelism: 2, WatermarkEvery: 1}, log, sink)
	if err != nil {
		panic(err)
	}
	if err := runner.Submit(query()); err != nil {
		panic(err)
	}

	ingest := func(from, to int) {
		for i := from; i <= to; i++ {
			if err := runner.Ingest(0, tuple(i)); err != nil {
				panic(err)
			}
		}
	}

	ingest(1, 35)
	id, err := runner.Checkpoint()
	if err != nil {
		panic(err)
	}
	fmt.Printf("checkpoint %d: %d results committed, log at %d records\n",
		id, len(sink.Committed()), log.Len())

	ingest(36, 70)
	fmt.Printf("pre-crash: %d uncommitted results buffered\n", sink.PendingCount())

	// 💥 Crash: the process dies. The log and committed epochs survive;
	// buffered results are lost.
	committed := runner.Crash()
	manifest := runner.Manifest()
	fmt.Printf("CRASH — surviving state: %d committed epochs, %d log records\n",
		len(committed), log.Len())

	// Recovery: restore every operator from the snapshot store's latest
	// completed checkpoint and replay only the log suffix past it. Epochs
	// committed before the crash are deduplicated; the lost window results
	// are regenerated. (checkpoint.Recover would replay the whole log
	// instead — same output, cost proportional to job lifetime.)
	recovered, err := checkpoint.RecoverFromStore(
		core.Config{Streams: 1, Parallelism: 2, WatermarkEvery: 1},
		log, manifest, committed, runner.Store())
	if err != nil {
		panic(err)
	}
	final := recovered.FinishReplay()
	fmt.Printf("after recovery: %d results, exactly once\n", len(final))
	for _, r := range final {
		fmt.Println("  ", r)
	}
}

// durableAct: the same guarantee across a process restart, with the final
// WAL append torn mid-frame for good measure.
func durableAct() {
	fmt.Println("\n=== Act 2: process restart from the state directory ===")
	dir, err := os.MkdirTemp("", "astream-faulttolerance-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	cfg := core.Config{
		Streams: 1, Parallelism: 2, WatermarkEvery: 1,
		StateDir: dir, SnapshotDeltaEvery: 3,
	}

	runner, store, err := durable.Open(cfg, nil, durable.Options{})
	if err != nil {
		panic(err)
	}
	if err := runner.Submit(query()); err != nil {
		panic(err)
	}
	for i := 1; i <= 35; i++ {
		if err := runner.Ingest(0, tuple(i)); err != nil {
			panic(err)
		}
	}
	id, err := runner.Checkpoint()
	if err != nil {
		panic(err)
	}
	fmt.Printf("checkpoint %d durable: manifest renamed into place, WAL fsynced\n", id)
	for i := 36; i <= 50; i++ {
		if err := runner.Ingest(0, tuple(i)); err != nil {
			panic(err)
		}
	}

	// 💥 The process dies mid-append. Closing the store stands in for the
	// process being gone; tearing the last WAL frame reproduces what the
	// filesystem may leave behind when the crash interrupts a write.
	committed := runner.Crash()
	if err := store.Close(); err != nil {
		panic(err)
	}
	tearLastFrame(dir)
	fmt.Printf("CRASH — in-memory state gone, final WAL append torn mid-frame\n")

	// A new process opens the directory cold: the torn frame is truncated
	// (it was never acknowledged durable — acknowledgment past the last
	// checkpoint is opportunistic until the next one), the latest completed
	// checkpoint restores, and the surviving suffix replays. The source
	// re-sends the one tuple whose append tore.
	runner2, store2, err := durable.Open(cfg, committed, durable.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("restart: recovered to checkpoint %d, %d log records survive\n",
		mustLatest(store2), store2.WAL().Len())
	if err := runner2.Ingest(0, tuple(50)); err != nil {
		panic(err)
	}
	final := runner2.Finish()
	if err := store2.Close(); err != nil {
		panic(err)
	}

	// Self-check: a clean, never-crashed run of the same input must produce
	// byte-identical output.
	want := cleanRun()
	verdict := "EXACTLY ONCE — byte-identical to the clean run"
	if len(final) != len(want) {
		verdict = fmt.Sprintf("DIVERGED: %d results vs %d clean", len(final), len(want))
	} else {
		for i := range final {
			if final[i] != want[i] {
				verdict = fmt.Sprintf("DIVERGED at result %d", i)
				break
			}
		}
	}
	fmt.Printf("after restart: %d results — %s\n", len(final), verdict)
	for _, r := range final {
		fmt.Println("  ", r)
	}
}

// tearLastFrame chops bytes off the end of the newest WAL segment,
// simulating an append the crash interrupted halfway.
func tearLastFrame(dir string) {
	entries, err := os.ReadDir(filepath.Join(dir, "wal"))
	if err != nil {
		panic(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	last := filepath.Join(dir, "wal", names[len(names)-1])
	info, err := os.Stat(last)
	if err != nil {
		panic(err)
	}
	if err := os.Truncate(last, info.Size()-3); err != nil {
		panic(err)
	}
}

func mustLatest(s *durable.Store) uint64 {
	k, ok := s.LatestComplete()
	if !ok {
		panic("no completed checkpoint after restart")
	}
	return k
}

// cleanRun produces the reference output: the same 50 tuples, no crash.
func cleanRun() []string {
	runner, err := checkpoint.NewRunner(
		core.Config{Streams: 1, Parallelism: 2, WatermarkEvery: 1},
		&checkpoint.Log{}, checkpoint.NewTxSink())
	if err != nil {
		panic(err)
	}
	if err := runner.Submit(query()); err != nil {
		panic(err)
	}
	for i := 1; i <= 50; i++ {
		if err := runner.Ingest(0, tuple(i)); err != nil {
			panic(err)
		}
	}
	return runner.Finish()
}
