// Quickstart: one input stream, two ad-hoc windowed aggregations sharing
// the same deployed topology. The second query is created mid-stream and
// the first is stopped mid-stream — no topology change either time.
package main

import (
	"fmt"

	"astream"
)

func main() {
	eng, err := astream.New(astream.Config{Streams: 1, Parallelism: 2, BatchSize: 1})
	if err != nil {
		panic(err)
	}

	// Query 1: per-key SUM of field 0 over tumbling 10-tick windows, for
	// tuples with field 1 > 500.
	pred := astream.True()
	c, _ := astream.Field(1, ">", 500)
	pred = pred.And(c)
	q1 := astream.NewAggregation(astream.Tumbling(10), astream.AggSum, 0, pred)
	id1, ack, err := eng.Submit(q1, printSink("sum"))
	if err != nil {
		panic(err)
	}
	<-ack
	fmt.Printf("deployed query %d (SUM, f1 > 500)\n", id1)

	ingest := func(from, to int) {
		for i := from; i <= to; i++ {
			t := astream.Tuple{Key: int64(i % 3), Time: astream.Time(i)}
			t.Fields[0] = int64(i)
			t.Fields[1] = int64((i * 37) % 1000)
			if err := eng.Ingest(0, t); err != nil {
				panic(err)
			}
		}
	}
	ingest(1, 40)

	// Ad-hoc: add a COUNT query via SQL while the stream is running.
	id2, ack2, err := eng.SubmitSQL(
		`SELECT COUNT(*) FROM A [RANGE 20] GROUPBY A.KEY`, printSink("count"))
	if err != nil {
		panic(err)
	}
	<-ack2
	fmt.Printf("deployed query %d (COUNT, ad hoc)\n", id2)
	ingest(41, 80)

	// Ad-hoc: stop the first query; the second keeps running.
	stopAck, err := eng.StopQuery(id1)
	if err != nil {
		panic(err)
	}
	<-stopAck
	fmt.Printf("stopped query %d\n", id1)
	ingest(81, 120)

	eng.Drain()
	fmt.Println("drained")
}

func printSink(name string) astream.Sink {
	return astream.SinkFunc(func(r astream.Result) {
		fmt.Printf("  [%s q%d] window=%v key=%d value=%d\n", name, r.QueryID, r.Window, r.Key, r.Value)
	})
}
