// Gaming reproduces the paper's motivating example (§1.1, Figure 1): an
// online-gaming platform with an advertisement stream A and a purchases
// stream P, serving ad-hoc analytics queries from different teams.
//
// Field conventions for this example:
//
//	A.F0 = ad price      A.F1 = ad length   A.F2 = geo code (49 = DE)
//	P.F0 = pack price    P.F1 = buyer age   P.F2 = buyer level (900+ = pro)
//
// Three queries share one topology:
//
//	Q1 (marketing, short-lived):  σ_geo=DE(A) ⋈ σ_price>50(P)
//	Q2 (psychology, long-lived):  σ_length>60(A) ⋈ σ_age<18(P)
//	Q3 (system, session-based):   σ_price>10(A) ⋈ σ_level=pro(P)
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"astream"
)

const (
	adsStream       = 0
	purchasesStream = 1
	geoDE           = 49
)

func main() {
	eng, err := astream.New(astream.Config{Streams: 2, Parallelism: 2, BatchSize: 1})
	if err != nil {
		panic(err)
	}

	counts := map[string]*uint64{}
	sink := func(name string) astream.Sink {
		var n uint64
		counts[name] = &n
		return astream.SinkFunc(func(r astream.Result) { atomic.AddUint64(&n, 1) })
	}

	submit := func(name, sql string) int {
		id, ack, err := eng.SubmitSQL(sql, sink(name))
		if err != nil {
			panic(fmt.Sprintf("%s: %v", name, err))
		}
		<-ack
		fmt.Printf("%-28s deployed as query %d\n", name, id)
		return id
	}

	rng := rand.New(rand.NewSource(7))
	now := int64(0)
	play := func(ticks int) {
		for i := 0; i < ticks; i++ {
			now++
			ad := astream.Tuple{Key: rng.Int63n(20), Time: astream.Time(now)}
			ad.Fields[0] = rng.Int63n(100) // price
			ad.Fields[1] = rng.Int63n(120) // length
			ad.Fields[2] = int64(40 + rng.Intn(20))
			if err := eng.Ingest(adsStream, ad); err != nil {
				panic(err)
			}
			p := astream.Tuple{Key: rng.Int63n(20), Time: astream.Time(now)}
			p.Fields[0] = rng.Int63n(100)       // pack price
			p.Fields[1] = 10 + rng.Int63n(40)   // age
			p.Fields[2] = 800 + rng.Int63n(250) // level
			if err := eng.Ingest(purchasesStream, p); err != nil {
				panic(err)
			}
		}
	}

	// Pre-scheduled start: the psychology team's long-running Q2.
	submit("Q2 psychology (age<18)",
		`SELECT * FROM A, P [RANGE 40] [SLIDE 20]
		 WHERE A.KEY = P.KEY AND A.F1 > 60 AND P.F1 < 18`)
	play(100)

	// Ad-hoc start: marketing's short-lived Q1.
	q1 := submit("Q1 marketing (DE, price>50)",
		fmt.Sprintf(`SELECT * FROM A, P [RANGE 30]
		 WHERE A.KEY = P.KEY AND A.F2 = %d AND P.F0 > 50`, geoDE))
	play(400)

	// Ad-hoc end: marketing got its numbers.
	ack, err := eng.StopQuery(q1)
	if err != nil {
		panic(err)
	}
	<-ack
	fmt.Println("Q1 stopped (ad-hoc end)")

	// Session-triggered start: monitor pro players' purchase loyalty.
	q3 := submit("Q3 pro-loyalty (session)",
		`SELECT * FROM A, P [RANGE 25]
		 WHERE A.KEY = P.KEY AND A.F0 > 10 AND P.F2 >= 900`)
	play(200)
	ack3, _ := eng.StopQuery(q3)
	<-ack3
	fmt.Println("Q3 stopped (session ended)")
	play(50)

	eng.Drain()
	fmt.Println()
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-28s %6d join results\n", name, atomic.LoadUint64(counts[name]))
	}
	m := eng.Metrics()
	fmt.Printf("\nshared work: %d slice pairs joined, %d reused from cache\n",
		atomic.LoadUint64(&m.PairsDone), atomic.LoadUint64(&m.PairsReuse))
}
