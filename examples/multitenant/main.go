// Multitenant demonstrates the SC1 scenario (paper Figure 6a): hundreds of
// tenants submit windowed aggregations against one shared stream. The
// example reports the paper's headline metrics — slowest and overall data
// throughput, deployment latency — and contrasts AStream with the
// query-at-a-time baseline at a small query count.
package main

import (
	"flag"
	"fmt"
	"time"

	"astream"
	"astream/internal/driver"
	"astream/internal/experiments"
	"astream/internal/gen"
)

func main() {
	tenants := flag.Int("tenants", 200, "number of tenant queries")
	measure := flag.Duration("measure", time.Second, "measurement window")
	flag.Parse()

	fmt.Printf("AStream with %d tenant queries:\n", *tenants)
	m := experiments.Run(experiments.Params{
		System: experiments.AStream, Kind: experiments.AggK,
		Scenario: "SC1", QueriesPerSec: 100, MaxParallelQ: *tenants,
		Measure: *measure,
	})
	fmt.Println(" ", m.Row())
	fmt.Printf("  one input tuple served %.0f queries: %0.f tuples/sec of query work from %.0f tuples/sec of input\n",
		m.ActiveQueries, m.OverallTupS, m.SlowestTupS)

	fmt.Println("\nquery-at-a-time baseline with 8 tenants (each tenant re-processes the stream):")
	b := experiments.Run(experiments.Params{
		System: experiments.Baseline, Kind: experiments.AggK,
		Scenario: "SC1", QueriesPerSec: 100, MaxParallelQ: 8,
		Measure: *measure,
	})
	fmt.Println(" ", b.Row())

	// Deployment latency detail through the public driver.
	fmt.Println("\ndeployment latency of 10 ad-hoc queries on a loaded AStream engine:")
	eng, err := astream.New(astream.Config{Streams: 1, Parallelism: 2, BatchSize: 1})
	if err != nil {
		panic(err)
	}
	d := driver.New(driver.Config{Streams: 1}, eng)
	d.StartPumps()
	qg := gen.NewQueries(gen.DefaultQueryConfig(1), 1)
	dg := gen.NewData(gen.DefaultDataConfig(), 1)
	start := time.Now()
	for i := 0; i < 10; i++ {
		for j := 0; j < 2000; j++ {
			t := dg.Next(astream.Time(time.Since(start).Milliseconds()))
			t.IngestNanos = time.Now().UnixNano()
			d.OfferTuple(0, t)
		}
		d.EnqueueRequest(driver.Request{Query: qg.Aggregation()})
		enq := time.Now()
		if _, err := d.PumpRequests(); err != nil {
			panic(err)
		}
		fmt.Printf("  query %2d deployed in %v\n", i+1, time.Since(enq).Round(time.Microsecond))
	}
	d.Finish()
}
