package astream_test

import (
	"sync"
	"testing"
	"time"

	"astream"
)

func TestPublicAPIQuickstart(t *testing.T) {
	eng, err := astream.New(astream.Config{
		Streams: 2, Parallelism: 2, BatchSize: 1,
		BatchTimeout: time.Hour, WatermarkEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	joins, aggs := 0, 0
	jid, ack, err := eng.SubmitSQL(
		`SELECT * FROM A, B [RANGE 10] WHERE A.KEY = B.KEY AND A.F0 > 10`,
		astream.SinkFunc(func(astream.Result) { mu.Lock(); joins++; mu.Unlock() }))
	if err != nil {
		t.Fatal(err)
	}
	<-ack
	agg := astream.NewAggregation(astream.Sliding(10, 5), astream.AggSum, 1, astream.True())
	_, ack2, err := eng.Submit(agg, astream.SinkFunc(func(astream.Result) { mu.Lock(); aggs++; mu.Unlock() }))
	if err != nil {
		t.Fatal(err)
	}
	<-ack2

	for i := 1; i <= 60; i++ {
		for s := 0; s < 2; s++ {
			tu := astream.Tuple{Key: int64(i % 3), Time: astream.Time(i)}
			tu.Fields[0] = int64(i % 40)
			tu.Fields[1] = 2
			if err := eng.Ingest(s, tu); err != nil {
				t.Fatal(err)
			}
		}
	}
	stopAck, err := eng.StopQuery(jid)
	if err != nil {
		t.Fatal(err)
	}
	<-stopAck
	eng.Drain()

	mu.Lock()
	defer mu.Unlock()
	if joins == 0 || aggs == 0 {
		t.Fatalf("results: joins=%d aggs=%d, want both > 0", joins, aggs)
	}
	if recs := eng.DeployRecords(); len(recs) != 3 {
		t.Fatalf("deploy records = %d, want 3 (2 creates + 1 stop)", len(recs))
	}
}

func TestPublicQueryBuilders(t *testing.T) {
	c, err := astream.Field(2, ">=", 7)
	if err != nil {
		t.Fatal(err)
	}
	p := astream.True().And(c).And(astream.KeyEquals(3))
	sel := astream.NewSelection(p)
	if sel.Kind != astream.KindSelection {
		t.Fatal("selection kind")
	}
	j := astream.NewJoin(astream.Tumbling(10), astream.True(), astream.True())
	if j.Kind != astream.KindJoin || j.Arity != 2 {
		t.Fatal("join builder")
	}
	cx := astream.NewComplex(astream.Tumbling(8), astream.Tumbling(16), astream.AggCount, -1, astream.True(), astream.True())
	if cx.Kind != astream.KindComplex {
		t.Fatal("complex builder")
	}
	if _, err := astream.Field(99, ">", 1); err == nil {
		t.Fatal("bad field must error")
	}
	if _, err := astream.Field(1, "><", 1); err == nil {
		t.Fatal("bad op must error")
	}
	if _, err := astream.ParseQuery("SELECT nonsense"); err == nil {
		t.Fatal("bad SQL must error")
	}
	q, err := astream.ParseQuery(`SELECT SUM(A.F0) FROM A [SESSION 5] GROUPBY A.KEY`)
	if err != nil || q.Window.Gap != 5 {
		t.Fatalf("session SQL: %v %+v", err, q)
	}
}

func TestPublicBaseline(t *testing.T) {
	be, err := astream.NewBaseline(astream.BaselineConfig{Streams: 1, Parallelism: 1, WatermarkEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	var mu sync.Mutex
	q := astream.NewAggregation(astream.Tumbling(10), astream.AggCount, -1, astream.True())
	_, ack, err := be.Submit(q, astream.SinkFunc(func(astream.Result) { mu.Lock(); n++; mu.Unlock() }))
	if err != nil {
		t.Fatal(err)
	}
	<-ack
	for i := 1; i <= 30; i++ {
		if err := be.Ingest(0, astream.Tuple{Key: 1, Time: astream.Time(i)}); err != nil {
			t.Fatal(err)
		}
	}
	be.Drain()
	mu.Lock()
	defer mu.Unlock()
	if n == 0 {
		t.Fatal("baseline produced nothing via public API")
	}
}
