// Command astream-bench regenerates the paper's evaluation (Figures 9–20)
// on the Go reproduction: each experiment prints the rows/series the paper
// plots, for AStream and, where applicable, the query-at-a-time baseline.
//
// Usage:
//
//	astream-bench -exp all                 # every figure, quick scale
//	astream-bench -exp fig9 -measure 3s    # one figure, longer steady state
//	astream-bench -exp fig20 -nodes 1,2,4,8,16
//
// Absolute numbers are machine-dependent; the shapes are the result (see
// EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"astream/internal/checkpoint"
	"astream/internal/core"
	"astream/internal/durable"
	"astream/internal/event"
	"astream/internal/experiments"
	"astream/internal/expr"
	"astream/internal/sqlstream"
	"astream/internal/window"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig9|fig9sweep|fig10|fig11|fig12|fig13|fig14|fig15|fig16|fig17|fig18|fig19|fig20|figslide|all")
	warmup := flag.Duration("warmup", 300*time.Millisecond, "steady-state warmup per run")
	measure := flag.Duration("measure", 700*time.Millisecond, "measurement window per run")
	nodesFlag := flag.String("nodes", "4,8", "comma-separated simulated node counts")
	maxQ := flag.Int("maxq", 256, "maximum query parallelism for fig17")
	queries := flag.String("queries", "1,10,50,100,200", "comma-separated query counts for the fig9sweep query-count axis")
	slides := flag.String("slide", "1,8,32,128", "comma-separated window/slide ratios for the figslide sweep")
	jsonDir := flag.String("json", "", "write BENCH_kernels.json, BENCH_recovery.json, and BENCH_figs.json into this directory and exit")
	flag.Parse()

	sc := experiments.Scale{Warmup: *warmup, Measure: *measure}
	nodes := parseInts(*nodesFlag)

	if *jsonDir != "" {
		if err := writeJSON(*jsonDir, sc, nodes); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	run := func(name string, fn func()) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("\n=== %s ===\n", name)
		fn()
	}

	run("fig9", func() {
		fmt.Println("Figure 9: slowest and overall data throughput, SC1 (AStream grid + single-query baseline)")
		for _, m := range experiments.Fig9SC1Throughput(sc, nodes) {
			fmt.Println(" ", m.Row())
		}
	})

	run("fig9sweep", func() {
		fmt.Printf("Figure 9 query-count sweep: SC1 throughput at %s concurrent queries (-queries)\n", *queries)
		for _, n := range nodes {
			for _, m := range experiments.Fig9QuerySweep(sc, n, parseInts(*queries)) {
				fmt.Println(" ", m.Row())
			}
		}
	})

	run("fig10", func() {
		fmt.Println("Figure 10: query deployment latency over time, 1 q/s up to 20 queries")
		for _, sys := range []experiments.System{experiments.Baseline, experiments.AStream} {
			fmt.Printf("  %s:\n", sys)
			for _, pt := range experiments.Fig10DeployTimeline(sys, 20, sc) {
				fmt.Printf("    query %2d: %v\n", pt.Ordinal, pt.Latency.Round(time.Microsecond))
			}
		}
	})

	sc1Lat := func(metric string) {
		fmt.Printf("Figures 11/12: %s across the SC1 grid\n", metric)
		for _, m := range experiments.Fig11And12SC1Latencies(sc, nodes) {
			fmt.Println(" ", m.Row())
		}
	}
	run("fig11", func() { sc1Lat("deployment latency") })
	run("fig12", func() { sc1Lat("event-time latency") })

	sc2 := func() {
		fmt.Println("Figures 13/14/15: SC2 grid (latency, throughput, deployment)")
		for _, m := range experiments.Fig13To15SC2(sc, nodes) {
			fmt.Println(" ", m.Row())
		}
	}
	run("fig13", sc2)
	run("fig14", sc2)
	run("fig15", sc2)

	run("fig16", func() {
		fmt.Println("Figure 16: complex-query timeline (throughput / latency / query count per phase)")
		for i, pt := range experiments.Fig16Timeline(sc) {
			fmt.Printf("  phase %d (t=%6s): %9.0f tup/s  lat=%6.1fms  queries=%d\n",
				i+1, pt.At.Round(time.Millisecond), pt.Throughput, pt.LatencyMS, pt.Queries)
		}
	})

	run("fig17", func() {
		fmt.Println("Figure 17: slowest throughput vs query parallelism (log sweep)")
		for _, kind := range []experiments.QueryKind{experiments.JoinK, experiments.AggK} {
			for _, n := range nodes {
				for _, m := range experiments.Fig17ParallelismSweep(sc, kind, n, *maxQ) {
					fmt.Println(" ", m.Row())
				}
			}
		}
	})

	run("fig18", func() {
		fmt.Println("Figure 18a: component share of AStream overhead vs query parallelism")
		for _, s := range experiments.Fig18ComponentOverhead(sc, []int{8, 64, 256}) {
			fmt.Printf("  %4d queries: query-set %4.1f%%  bitset %4.1f%%  router-copy %4.1f%%  (total %.2f%% of budget)\n",
				s.Queries, 100*s.QuerySetGen, 100*s.Bitset, 100*s.RouterC, 100*s.TotalShare)
		}
		fmt.Println("Figure 18b: single-query sharing overhead (AStream vs baseline)")
		for _, kind := range []experiments.QueryKind{experiments.JoinK, experiments.AggK} {
			a, b, ov := experiments.Fig18bSingleQueryOverhead(sc, kind)
			fmt.Printf("  %-5s astream %9.0f tup/s  baseline %9.0f tup/s  overhead %5.1f%%\n",
				kind, a.SlowestTupS, b.SlowestTupS, 100*ov)
		}
	})

	run("fig19", func() {
		fmt.Println("Figure 19: effect of ad-hoc join queries on existing long-running ones")
		for _, scen := range []string{"SC1", "SC2"} {
			for _, pt := range experiments.Fig19Impact(sc, scen, []int{10, 50, 100}, []int{0, 10, 20, 50}) {
				fmt.Printf("  %dq %s +%2d ad-hoc: before %9.0f tup/s  after %9.0f tup/s\n",
					pt.LongRunning, pt.Scenario, pt.AdHoc, pt.BeforeTupS, pt.AfterTupS)
			}
		}
	})

	run("figslide", func() {
		fmt.Printf("Slide-ratio sweep: aggregation throughput vs window/slide ratio %s (-slide)\n", *slides)
		for _, n := range nodes {
			for _, m := range experiments.FigSlideSweep(sc, n, parseInts(*slides)) {
				fmt.Printf("  ratio %4d: %s\n", int(m.Params.WindowLen/m.Params.WindowSlide), m.Row())
			}
		}
	})

	run("fig20", func() {
		fmt.Println("Figure 20: sustainable ad-hoc queries vs node count (fixed offered rate)")
		counts := []int{25, 50, 100, 200, 400}
		for _, scen := range []string{"SC1", "SC2"} {
			for _, pt := range experiments.Fig20Scalability(sc, scen, nodes, counts, 10000) {
				fmt.Printf("  %2d nodes %s: sustains %d queries\n", pt.Nodes, pt.Scenario, pt.Sustained)
			}
		}
	})

	if *exp != "all" {
		switch *exp {
		case "fig9", "fig9sweep", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "figslide":
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
	}
}

// kernelResult is one row of BENCH_kernels.json.
type kernelResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// writeJSON runs the hot-path kernel microbenchmarks and the headline figure
// experiments, emitting machine-readable BENCH_kernels.json and
// BENCH_figs.json for before/after comparisons in CI and PR descriptions.
func writeJSON(dir string, sc experiments.Scale, nodes []int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	var kernels []kernelResult
	for _, kb := range core.KernelBenchmarks() {
		kb := kb
		r := testing.Benchmark(func(b *testing.B) {
			run := kb.New()
			b.ReportAllocs()
			b.ResetTimer()
			run(b.N)
		})
		kernels = append(kernels, kernelResult{
			Name:        kb.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
		fmt.Printf("kernel %-28s %12.1f ns/op %8d B/op %6d allocs/op\n",
			kernels[len(kernels)-1].Name, kernels[len(kernels)-1].NsPerOp,
			kernels[len(kernels)-1].BytesPerOp, kernels[len(kernels)-1].AllocsPerOp)
	}
	if err := writeFileJSON(filepath.Join(dir, "BENCH_kernels.json"), kernels); err != nil {
		return err
	}

	recov, err := benchRecovery()
	if err != nil {
		return fmt.Errorf("recovery benchmark: %w", err)
	}
	fmt.Printf("recovery: snapshot+suffix %8.2fms  full replay %8.2fms  speedup %.1fx (%d/%d records replayed)\n",
		float64(recov.SnapshotRestoreNanos)/1e6, float64(recov.FullReplayNanos)/1e6,
		recov.Speedup, recov.SuffixRecords, recov.LogRecords)
	durRows, err := benchDurableRecovery()
	if err != nil {
		return fmt.Errorf("durable recovery benchmark: %w", err)
	}
	for _, row := range durRows {
		fmt.Printf("durable recovery: %2d ckpts delta=%d  reopen %8.2fms  wal %7d B  snap %7d B (%d/%d records replayed)\n",
			row.Checkpoints, row.DeltaEvery, float64(row.ReopenNanos)/1e6,
			row.WALBytes, row.SnapBytes, row.SuffixRecords, row.LogRecords)
	}
	report := recoveryReport{InMemory: recov, Durable: durRows}
	if err := writeFileJSON(filepath.Join(dir, "BENCH_recovery.json"), report); err != nil {
		return err
	}

	fig9 := experiments.Fig9SC1Throughput(sc, nodes)
	fig1112 := experiments.Fig11And12SC1Latencies(sc, nodes)
	figSlide := experiments.FigSlideSweep(sc, nodes[0], []int{1, 8, 32, 128})
	fmt.Printf("fig9_sc1_throughput: %d measurements\n", len(fig9))
	fmt.Printf("fig11_12_sc1_latency: %d measurements\n", len(fig1112))
	fmt.Printf("figslide_ratio_sweep: %d measurements\n", len(figSlide))
	figs := map[string][]experiments.Measurement{
		"fig9_sc1_throughput":  fig9,
		"fig11_12_sc1_latency": fig1112,
		"figslide_ratio_sweep": figSlide,
	}
	return writeFileJSON(filepath.Join(dir, "BENCH_figs.json"), figs)
}

// recoveryResult is BENCH_recovery.json: the cost of recovering the same
// crashed job two ways. Snapshot-based recovery restores every operator
// from the latest completed checkpoint and replays only the log suffix past
// it; full-log replay rebuilds the job from record zero. The suffix path's
// cost is proportional to the checkpoint interval, the full path's to job
// lifetime — the speedup grows with log length.
type recoveryResult struct {
	Checkpoints          int     `json:"checkpoints"`
	LogRecords           int     `json:"log_records"`
	SuffixRecords        int     `json:"suffix_records"`
	SnapshotRestoreNanos int64   `json:"snapshot_restore_nanos"`
	FullReplayNanos      int64   `json:"full_replay_nanos"`
	Speedup              float64 `json:"speedup"`
}

// benchRecovery runs a deterministic logged workload (shared aggregation +
// shared join, 20 checkpoints, a short uncheckpointed tail), crashes it, and
// times RecoverFromStore against full-log Recover from the identical crash
// state. Both recoveries must commit identical output or the measurement is
// meaningless, so any divergence is an error.
func benchRecovery() (recoveryResult, error) {
	const (
		checkpoints  = 20
		ticksPerCkpt = 50 // two streams each tick
		tailTicks    = 25 // ingested after the last checkpoint, lost by the crash
		reps         = 3
	)
	cfg := core.Config{
		Streams: 2, Parallelism: 2, Nodes: 2, WatermarkEvery: 1,
		NowNanos: func() int64 { return 1 },
	}
	log := &checkpoint.Log{}
	store := checkpoint.NewSnapshotStore()
	r, err := checkpoint.NewRunnerWithStore(cfg, log, checkpoint.NewTxSink(), store)
	if err != nil {
		return recoveryResult{}, err
	}
	queries := []*core.Query{
		{Kind: core.KindAggregation, Arity: 1,
			Predicates: []expr.Predicate{expr.True().And(expr.Comparison{Field: 0, Op: expr.GT, Value: 20})},
			Window:     window.TumblingSpec(10), Agg: sqlstream.AggSum, AggField: 1},
		{Kind: core.KindJoin, Arity: 2,
			Predicates: []expr.Predicate{expr.True(), expr.True()},
			Window:     window.TumblingSpec(8), AggField: -1},
	}
	for _, q := range queries {
		if err := r.Submit(q); err != nil {
			return recoveryResult{}, err
		}
	}
	rng := rand.New(rand.NewSource(7))
	now := event.Time(0)
	tick := func() error {
		now++
		for s := 0; s < cfg.Streams; s++ {
			tu := event.Tuple{Key: int64(rng.Intn(3)), Time: now}
			for f := range tu.Fields {
				tu.Fields[f] = int64(rng.Intn(100))
			}
			if err := r.Ingest(s, tu); err != nil {
				return err
			}
		}
		return nil
	}
	for p := 0; p < checkpoints; p++ {
		for i := 0; i < ticksPerCkpt; i++ {
			if err := tick(); err != nil {
				return recoveryResult{}, err
			}
		}
		if _, err := r.Checkpoint(); err != nil {
			return recoveryResult{}, err
		}
	}
	for i := 0; i < tailTicks; i++ {
		if err := tick(); err != nil {
			return recoveryResult{}, err
		}
	}
	manifest := r.Manifest()
	committed := r.Crash()
	copyCommitted := func() map[uint64][]string {
		c := make(map[uint64][]string, len(committed))
		for k, v := range committed {
			c[k] = append([]string(nil), v...)
		}
		return c
	}
	// Best-of-reps wall time for each path; the fresh TxSink and engine per
	// rep make the reps independent, and RecoverFromStore leaves the store's
	// completed checkpoint intact so it can be recovered from repeatedly.
	measure := func(fromStore bool) (int64, []string, error) {
		var best int64
		var out []string
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			var rec *checkpoint.Runner
			var err error
			if fromStore {
				rec, err = checkpoint.RecoverFromStore(cfg, log, manifest, copyCommitted(), store)
			} else {
				rec, err = checkpoint.Recover(cfg, log, manifest, copyCommitted())
			}
			if err != nil {
				return 0, nil, err
			}
			o := rec.FinishReplay()
			if el := time.Since(start).Nanoseconds(); best == 0 || el < best {
				best, out = el, o
			}
		}
		return best, out, nil
	}
	fullNanos, fullOut, err := measure(false)
	if err != nil {
		return recoveryResult{}, err
	}
	snapNanos, snapOut, err := measure(true)
	if err != nil {
		return recoveryResult{}, err
	}
	if len(snapOut) != len(fullOut) {
		return recoveryResult{}, fmt.Errorf("recovery outputs diverge: %d vs %d results", len(snapOut), len(fullOut))
	}
	for i := range snapOut {
		if snapOut[i] != fullOut[i] {
			return recoveryResult{}, fmt.Errorf("recovery outputs diverge at result %d: %q vs %q", i, snapOut[i], fullOut[i])
		}
	}
	return recoveryResult{
		Checkpoints:          checkpoints,
		LogRecords:           log.Len(),
		SuffixRecords:        log.Len() - manifest.Offsets[checkpoints-1],
		SnapshotRestoreNanos: snapNanos,
		FullReplayNanos:      fullNanos,
		Speedup:              float64(fullNanos) / float64(snapNanos),
	}, nil
}

// recoveryReport is BENCH_recovery.json: the in-memory snapshot-vs-replay
// comparison plus the durable backend's reopen sweep (recovery time vs state
// size, full snapshots vs base+delta chains).
type recoveryReport struct {
	InMemory recoveryResult       `json:"in_memory"`
	Durable  []durableRecoveryRow `json:"durable"`
}

// durableRecoveryRow is one point of the durable reopen sweep: a crashed
// process's state directory opened cold — manifest load, WAL scan, chain
// restore, suffix replay — at a given job length and delta cadence.
type durableRecoveryRow struct {
	Checkpoints   int   `json:"checkpoints"`
	DeltaEvery    int   `json:"delta_every"`
	LogRecords    int   `json:"log_records"`
	SuffixRecords int   `json:"suffix_records"`
	WALBytes      int64 `json:"wal_bytes"`
	SnapBytes     int64 `json:"snap_bytes"`
	ReopenNanos   int64 `json:"reopen_nanos"`
}

// benchDurableRecovery sweeps the durable backend's cold-open cost across job
// length (checkpoints, which also scales retained slice state via a
// long-window aggregation) and snapshot cadence (0 = every checkpoint full,
// 3 = base + two deltas between fulls). Within a sweep point the delta modes
// must produce identical final output or the comparison is meaningless.
func benchDurableRecovery() ([]durableRecoveryRow, error) {
	var rows []durableRecoveryRow
	for _, ckpts := range []int{5, 20} {
		var want []string
		for _, deltaEvery := range []int{0, 3} {
			row, out, err := runDurableRecovery(ckpts, deltaEvery)
			if err != nil {
				return nil, err
			}
			if want == nil {
				want = out
			} else if len(out) != len(want) {
				return nil, fmt.Errorf("durable recovery outputs diverge across delta modes: %d vs %d results", len(out), len(want))
			} else {
				for i := range out {
					if out[i] != want[i] {
						return nil, fmt.Errorf("durable recovery outputs diverge at result %d: %q vs %q", i, out[i], want[i])
					}
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// runDurableRecovery runs the logged workload against a durable state
// directory, crashes after a short uncheckpointed tail, and times reopening
// the directory cold (best of reps). Reopen without a subsequent checkpoint
// leaves the directory untouched, so the reps are independent measurements of
// the same crash state.
func runDurableRecovery(ckpts, deltaEvery int) (durableRecoveryRow, []string, error) {
	const (
		ticksPerCkpt = 50
		tailTicks    = 25
		reps         = 3
	)
	dir, err := os.MkdirTemp("", "astream-bench-recovery-*")
	if err != nil {
		return durableRecoveryRow{}, nil, err
	}
	defer os.RemoveAll(dir)
	cfg := core.Config{
		Streams: 2, Parallelism: 2, Nodes: 2, WatermarkEvery: 1,
		NowNanos: func() int64 { return 1 },
		StateDir: dir, SnapshotDeltaEvery: deltaEvery,
	}
	r, s, err := durable.Open(cfg, nil, durable.Options{})
	if err != nil {
		return durableRecoveryRow{}, nil, err
	}
	queries := []*core.Query{
		{Kind: core.KindAggregation, Arity: 1,
			Predicates: []expr.Predicate{expr.True().And(expr.Comparison{Field: 0, Op: expr.GT, Value: 20})},
			Window:     window.TumblingSpec(10), Agg: sqlstream.AggSum, AggField: 1},
		// A window longer than the run pins its slices live, so retained
		// aggregate state — and with it full-snapshot size — grows with the
		// job while deltas stay proportional to the slices dirtied per
		// barrier. This is the axis the sweep exists to show.
		{Kind: core.KindAggregation, Arity: 1,
			Predicates: []expr.Predicate{expr.True()},
			Window:     window.TumblingSpec(1 << 20), Agg: sqlstream.AggSum, AggField: 2},
		{Kind: core.KindJoin, Arity: 2,
			Predicates: []expr.Predicate{expr.True(), expr.True()},
			Window:     window.TumblingSpec(8), AggField: -1},
	}
	for _, q := range queries {
		if err := r.Submit(q); err != nil {
			return durableRecoveryRow{}, nil, err
		}
	}
	rng := rand.New(rand.NewSource(7))
	now := event.Time(0)
	tick := func() error {
		now++
		for st := 0; st < cfg.Streams; st++ {
			tu := event.Tuple{Key: int64(rng.Intn(3)), Time: now}
			for f := range tu.Fields {
				tu.Fields[f] = int64(rng.Intn(100))
			}
			if err := r.Ingest(st, tu); err != nil {
				return err
			}
		}
		return nil
	}
	for p := 0; p < ckpts; p++ {
		for i := 0; i < ticksPerCkpt; i++ {
			if err := tick(); err != nil {
				return durableRecoveryRow{}, nil, err
			}
		}
		if _, err := r.Checkpoint(); err != nil {
			return durableRecoveryRow{}, nil, err
		}
	}
	for i := 0; i < tailTicks; i++ {
		if err := tick(); err != nil {
			return durableRecoveryRow{}, nil, err
		}
	}
	logLen := s.WAL().Len()
	suffix := logLen - s.Offsets()[ckpts-1]
	committed := r.Crash()
	if err := s.Close(); err != nil {
		return durableRecoveryRow{}, nil, err
	}
	walBytes, err := dirBytes(filepath.Join(dir, "wal"))
	if err != nil {
		return durableRecoveryRow{}, nil, err
	}
	snapBytes, err := dirBytes(filepath.Join(dir, "snap"))
	if err != nil {
		return durableRecoveryRow{}, nil, err
	}

	var best int64
	var out []string
	for rep := 0; rep < reps; rep++ {
		c := make(map[uint64][]string, len(committed))
		for k, v := range committed {
			c[k] = append([]string(nil), v...)
		}
		start := time.Now()
		rec, rs, err := durable.Open(cfg, c, durable.Options{})
		if err != nil {
			return durableRecoveryRow{}, nil, err
		}
		el := time.Since(start).Nanoseconds()
		o := rec.Finish()
		if err := rs.Close(); err != nil {
			return durableRecoveryRow{}, nil, err
		}
		if best == 0 || el < best {
			best, out = el, o
		}
	}
	return durableRecoveryRow{
		Checkpoints:   ckpts,
		DeltaEvery:    deltaEvery,
		LogRecords:    logLen,
		SuffixRecords: suffix,
		WALBytes:      walBytes,
		SnapBytes:     snapBytes,
		ReopenNanos:   best,
	}, out, nil
}

// dirBytes sums the sizes of the regular files directly under dir.
func dirBytes(dir string) (int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			return 0, err
		}
		if info.Mode().IsRegular() {
			total += info.Size()
		}
	}
	return total, nil
}

func writeFileJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad count %q\n", f)
			os.Exit(2)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}
