// Command astream-vet runs AStream's invariant analyzers over the module:
// event-time purity (wallclock), interprocedural lock discipline
// (lockheld-send), hot-path allocation freedom (hotalloc), deterministic
// iteration (maporder), goroutine teardown (leakygo), and consistent
// atomics (naked-atomic). It is stdlib-only — go/parser, go/types, and
// go/importer, no x/tools.
//
// Usage:
//
//	astream-vet [-list] [-run name,name] [-format text|json] [-timing]
//	            [-baseline file] [-write-baseline file] [packages]
//
// Package arguments filter by import-path suffix; "./..." (or no
// argument) means the whole module.
//
// -run selects a subset of analyzers by name (default all; -only is the
// deprecated spelling). -format json emits the stable machine-readable
// schema (see internal/lint.Report): analyzer, repo-relative file,
// line/col, message, the witness call chain for interprocedural findings,
// and the //lint:ignore-suppressed findings with their stated reasons.
// -baseline subtracts a committed findings file so CI fails only on new
// findings (matched by analyzer+file+message, line-insensitive);
// -write-baseline records the current findings as that file (suppressions
// excluded — they are not regressions). -timing prints each analyzer's
// wall-clock cost to stderr. Exit status is 1 when any non-baselined
// diagnostic survives //lint:ignore suppression.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"astream/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	only := flag.String("only", "", "deprecated alias for -run")
	format := flag.String("format", "text", "output format: text or json")
	baseline := flag.String("baseline", "", "baseline findings file to subtract (fail only on new findings)")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit")
	timing := flag.Bool("timing", false, "print per-analyzer wall-clock timings to stderr")
	flag.Parse()

	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "astream-vet: unknown format %q (want text or json)\n", *format)
		os.Exit(2)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "astream-vet:", err)
		os.Exit(2)
	}
	analyzers := lint.ModuleAnalyzers("astream")
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	sel := *run
	if sel == "" {
		sel = *only
	} else if *only != "" && *only != *run {
		fmt.Fprintln(os.Stderr, "astream-vet: -run and -only disagree; use -run")
		os.Exit(2)
	}
	if sel != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(sel, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var filtered []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for n := range keep {
			fmt.Fprintf(os.Stderr, "astream-vet: unknown analyzer %q\n", n)
			os.Exit(2)
		}
		analyzers = filtered
	}

	pkgs, err := lint.NewLoader().LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "astream-vet:", err)
		os.Exit(2)
	}
	if args := flag.Args(); len(args) > 0 && !(len(args) == 1 && args[0] == "./...") {
		pkgs = filterPackages(pkgs, args)
		if len(pkgs) == 0 {
			fmt.Fprintf(os.Stderr, "astream-vet: no packages match %s\n", strings.Join(args, " "))
			os.Exit(2)
		}
	}

	diags, suppressed, timings := lint.RunAllTimed(pkgs, analyzers)
	if *timing {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "astream-vet: %-14s %8.1fms\n", tm.Name, float64(tm.Elapsed.Microseconds())/1000)
		}
	}
	report := lint.NewReport(root, diags)

	if *writeBaseline != "" {
		b, err := report.WriteJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "astream-vet:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*writeBaseline, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "astream-vet:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "astream-vet: wrote %d finding(s) to %s\n", len(report.Findings), *writeBaseline)
		return
	}

	findings := report.Findings
	if *baseline != "" {
		base, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "astream-vet:", err)
			os.Exit(2)
		}
		findings = report.Subtract(base)
	}

	if *format == "json" {
		out := lint.Report{
			Version:    lint.ReportVersion,
			Findings:   findings,
			Suppressed: lint.SuppressedFindings(root, suppressed),
		}
		b, err := out.WriteJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "astream-vet:", err)
			os.Exit(2)
		}
		os.Stdout.Write(b)
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "astream-vet: %d problem(s)\n", len(findings))
		os.Exit(1)
	}
}

// filterPackages keeps packages whose import path matches an argument: an
// exact path, a suffix (./internal/core), or a "dir/..." wildcard.
func filterPackages(pkgs []*lint.Package, args []string) []*lint.Package {
	var out []*lint.Package
	for _, p := range pkgs {
		for _, arg := range args {
			a := strings.TrimPrefix(arg, "./")
			if strings.HasSuffix(a, "/...") {
				prefix := strings.TrimSuffix(a, "/...")
				if strings.Contains(p.Path+"/", "/"+prefix+"/") || strings.HasPrefix(p.Path, prefix) {
					out = append(out, p)
					break
				}
				continue
			}
			if p.Path == a || strings.HasSuffix(p.Path, "/"+a) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// moduleRoot walks up from the working directory to the first go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
