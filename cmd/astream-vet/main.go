// Command astream-vet runs AStream's invariant analyzers over the module:
// event-time purity (wallclock), lock discipline (lockheld-send),
// deterministic iteration (maporder), goroutine teardown (leakygo), and
// consistent atomics (naked-atomic). It is stdlib-only — go/parser,
// go/types, and go/importer, no x/tools.
//
// Usage:
//
//	astream-vet [-list] [-only name,name] [packages]
//
// Package arguments filter by import-path suffix; "./..." (or no
// argument) means the whole module. Exit status is 1 when any diagnostic
// survives //lint:ignore suppression.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"astream/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "astream-vet:", err)
		os.Exit(2)
	}
	analyzers := lint.ModuleAnalyzers("astream")
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var filtered []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for n := range keep {
			fmt.Fprintf(os.Stderr, "astream-vet: unknown analyzer %q\n", n)
			os.Exit(2)
		}
		analyzers = filtered
	}

	pkgs, err := lint.NewLoader().LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "astream-vet:", err)
		os.Exit(2)
	}
	if args := flag.Args(); len(args) > 0 && !(len(args) == 1 && args[0] == "./...") {
		pkgs = filterPackages(pkgs, args)
		if len(pkgs) == 0 {
			fmt.Fprintf(os.Stderr, "astream-vet: no packages match %s\n", strings.Join(args, " "))
			os.Exit(2)
		}
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "astream-vet: %d problem(s)\n", len(diags))
		os.Exit(1)
	}
}

// filterPackages keeps packages whose import path matches an argument: an
// exact path, a suffix (./internal/core), or a "dir/..." wildcard.
func filterPackages(pkgs []*lint.Package, args []string) []*lint.Package {
	var out []*lint.Package
	for _, p := range pkgs {
		for _, arg := range args {
			a := strings.TrimPrefix(arg, "./")
			if strings.HasSuffix(a, "/...") {
				prefix := strings.TrimSuffix(a, "/...")
				if strings.Contains(p.Path+"/", "/"+prefix+"/") || strings.HasPrefix(p.Path, prefix) {
					out = append(out, p)
					break
				}
				continue
			}
			if p.Path == a || strings.HasSuffix(p.Path, "/"+a) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// moduleRoot walks up from the working directory to the first go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
