// Command astream-sql is an interactive shell over the shared engine:
// submit and stop SQL queries ad hoc while a generated stream flows, and
// watch per-query results arrive.
//
// Commands (one per line on stdin):
//
//	SELECT ...            submit a query (paper templates; see README)
//	stop <id>             stop a running query
//	rate <tuples/sec>     change the generated input rate (default 10000)
//	stats                 print engine counters
//	quit                  drain and exit
//
// Example session:
//
//	$ astream-sql
//	> SELECT SUM(A.F0) FROM A [RANGE 2000] WHERE A.F1 > 500 GROUPBY A.KEY
//	query 1 deployed
//	[q1] w=[2000,4000) key=17 value=8943
//	> stop 1
//	query 1 stopped
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"astream"
	"astream/internal/gen"
)

func main() {
	streams := flag.Int("streams", 2, "number of input streams (A, B, …)")
	parallelism := flag.Int("parallelism", 2, "operator parallelism")
	results := flag.Int("results", 5, "print at most this many results per query per second")
	flag.Parse()

	eng, err := astream.New(astream.Config{
		Streams:     *streams,
		Parallelism: *parallelism,
		BatchSize:   1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var rate atomic.Int64
	rate.Store(10000)
	stop := make(chan struct{})
	go pump(eng, *streams, &rate, stop)

	fmt.Printf("astream-sql: %d streams, parallelism %d. Type SQL, 'stop <id>', 'rate <n>', 'stats', 'quit'.\n",
		*streams, *parallelism)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == "quit" || line == "exit":
			close(stop)
			eng.Drain()
			return
		case line == "stats":
			m := eng.Metrics()
			fmt.Printf("selected=%d dropped=%d joined=%d agg-rows=%d pairs=%d reused=%d active-queries=%d\n",
				atomic.LoadUint64(&m.Selected), atomic.LoadUint64(&m.Dropped),
				atomic.LoadUint64(&m.JoinedOut), atomic.LoadUint64(&m.AggOut),
				atomic.LoadUint64(&m.PairsDone), atomic.LoadUint64(&m.PairsReuse),
				eng.ActiveQueries())
		case strings.HasPrefix(line, "rate "):
			if n, err := strconv.ParseInt(strings.TrimSpace(line[5:]), 10, 64); err == nil && n > 0 {
				rate.Store(n)
				fmt.Printf("rate set to %d tuples/sec/stream\n", n)
			} else {
				fmt.Println("usage: rate <tuples/sec>")
			}
		case strings.HasPrefix(line, "stop "):
			id, err := strconv.Atoi(strings.TrimSpace(line[5:]))
			if err != nil {
				fmt.Println("usage: stop <id>")
				break
			}
			ack, err := eng.StopQuery(id)
			if err != nil {
				fmt.Println(err)
				break
			}
			<-ack
			fmt.Printf("query %d stopped\n", id)
		default:
			submit(eng, line, *results)
		}
		fmt.Print("> ")
	}
	close(stop)
	eng.Drain()
}

func submit(eng *astream.Engine, sql string, perSec int) {
	var printed atomic.Int64
	var windowStart atomic.Int64
	sink := astream.SinkFunc(func(r astream.Result) {
		nowSec := time.Now().Unix()
		if windowStart.Swap(nowSec) != nowSec {
			printed.Store(0)
		}
		if printed.Add(1) > int64(perSec) {
			return
		}
		switch r.Kind {
		case astream.KindJoin:
			fmt.Printf("\n[q%d] join w=%v key=%d left=%v right=%v\n> ", r.QueryID, r.Window, r.Join.Key, r.Join.Left, r.Join.Right)
		case astream.KindSelection:
			fmt.Printf("\n[q%d] tuple key=%d fields=%v\n> ", r.QueryID, r.Tuple.Key, r.Tuple.Fields)
		default:
			fmt.Printf("\n[q%d] w=%v key=%d value=%d\n> ", r.QueryID, r.Window, r.Key, r.Value)
		}
	})
	id, ack, err := eng.SubmitSQL(sql, sink)
	if err != nil {
		fmt.Println(err)
		return
	}
	<-ack
	fmt.Printf("query %d deployed\n", id)
}

// pump feeds generated tuples with wall-clock event times.
func pump(eng *astream.Engine, streams int, rate *atomic.Int64, stop chan struct{}) {
	gens := make([]*gen.Data, streams)
	for i := range gens {
		gens[i] = gen.NewData(gen.DefaultDataConfig(), int64(i)+1)
	}
	start := time.Now()
	for {
		select {
		case <-stop:
			return
		default:
		}
		r := rate.Load()
		batch := int(r / 100)
		if batch < 1 {
			batch = 1
		}
		at := astream.Time(time.Since(start).Milliseconds())
		for i := 0; i < batch; i++ {
			for s := 0; s < streams; s++ {
				t := gens[s].Next(at)
				t.IngestNanos = time.Now().UnixNano()
				if err := eng.Ingest(s, t); err != nil {
					return
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
}
